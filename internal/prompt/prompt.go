// Package prompt holds the prompt templates of the pipeline (Figure 3):
// zero-shot and few-shot rule-generation prompts, and the Cypher-translation
// prompt that pairs each natural-language rule with the graph's schema
// summary (§3.2).
package prompt

import (
	"fmt"
	"strings"
)

// Mode selects the prompting strategy.
type Mode uint8

const (
	// ZeroShot gives only the instruction and the encoded graph.
	ZeroShot Mode = iota
	// FewShot additionally provides worked rule examples.
	FewShot
)

// String returns the mode's lowercase name.
func (m Mode) String() string {
	if m == FewShot {
		return "few-shot"
	}
	return "zero-shot"
}

// Modes lists both prompting strategies in paper order.
var Modes = []Mode{ZeroShot, FewShot}

// ruleInstruction asks for consistency rules in terms of graph functional
// and entity dependencies (§3.2).
const ruleInstruction = `You are given a property graph encoded as text. Analyze its structure,
labels and properties, and generate consistency rules that enforce data
integrity, expressed as graph functional dependencies and graph entity
dependencies. State each rule as one plain-English sentence on its own
line, prefixed with "RULE: ".`

// fewShotExamples are the worked examples appended in few-shot mode
// (Figure 3b). They deliberately showcase simple schema-style constraints,
// which is why few-shot runs skew toward high-confidence schema rules.
var fewShotExamples = []string{
	"RULE: Each Product node should have a unique sku property.",
	"RULE: Each Order node should have a createdAt property.",
	"RULE: Every SHIPS_TO relationship should connect an Order node to an Address node.",
	"RULE: The status property of Order nodes should only be one of \"open\" or \"closed\".",
}

// RuleGeneration builds the step-1 prompt around an encoded graph fragment.
func RuleGeneration(mode Mode, graphText string) string {
	return RuleGenerationWithExclusions(mode, graphText, nil)
}

// RuleGenerationWithExclusions builds a step-1 prompt that additionally
// instructs the model not to propose previously rejected rules — the
// interactive-refinement loop of the paper's future work (§5).
func RuleGenerationWithExclusions(mode Mode, graphText string, rejected []string) string {
	var b strings.Builder
	b.WriteString(ruleInstruction)
	b.WriteString("\n\n")
	if mode == FewShot {
		b.WriteString("Examples of consistency rules:\n")
		for _, ex := range fewShotExamples {
			b.WriteString(ex)
			b.WriteString("\n")
		}
		b.WriteString("\n")
	}
	if len(rejected) > 0 {
		b.WriteString(exclusionHeader + "\n")
		for _, nl := range rejected {
			b.WriteString("- " + nl + "\n")
		}
		b.WriteString("\n")
	}
	b.WriteString("Property graph:\n")
	b.WriteString(graphText)
	return b.String()
}

// exclusionHeader marks the rejected-rules section of a refinement prompt.
const exclusionHeader = "The domain expert rejected the following rules; do not propose them again:"

// ExtractExclusions returns the rejected rule statements of a refinement
// prompt (empty outside a refinement round).
func ExtractExclusions(p string) []string {
	i := strings.Index(p, exclusionHeader)
	if i < 0 {
		return nil
	}
	rest := p[i+len(exclusionHeader):]
	if j := strings.Index(rest, "\nProperty graph:"); j >= 0 {
		rest = rest[:j]
	}
	var out []string
	for _, line := range strings.Split(rest, "\n") {
		line = strings.TrimSpace(line)
		if nl, ok := strings.CutPrefix(line, "- "); ok {
			out = append(out, nl)
		}
	}
	return out
}

// CypherTranslation builds the step-2 prompt: the generated rule in natural
// language plus information about the property graph (node and edge labels
// and properties), asking for the Cypher queries that measure the rule.
func CypherTranslation(ruleNL, schemaDescription string) string {
	return fmt.Sprintf(`Translate the following property-graph consistency rule into Cypher.
Write three queries, each returning a single integer column n:
SUPPORT: elements satisfying the rule (premise and conclusion);
BODY: elements the rule's premise applies to;
HEAD: all elements of the rule's target domain.
Prefix each query with its label on its own line.

Rule: %s

Graph information:
%s`, ruleNL, schemaDescription)
}

// Markers used by models (and tests) to recognize prompt stages.
const (
	RuleGenMarker     = "generate consistency rules"
	TranslationMarker = "Translate the following property-graph consistency rule"
)

// IsRuleGeneration reports whether the prompt is a step-1 prompt.
func IsRuleGeneration(p string) bool { return strings.Contains(p, RuleGenMarker) }

// IsTranslation reports whether the prompt is a step-2 prompt.
func IsTranslation(p string) bool { return strings.Contains(p, TranslationMarker) }

// ExtractGraphText returns the encoded-graph portion of a rule-generation
// prompt.
func ExtractGraphText(p string) string {
	const marker = "Property graph:\n"
	if i := strings.Index(p, marker); i >= 0 {
		return p[i+len(marker):]
	}
	return ""
}

// ExtractRuleNL returns the rule sentence of a translation prompt.
func ExtractRuleNL(p string) string {
	const marker = "\nRule: "
	i := strings.Index(p, marker)
	if i < 0 {
		return ""
	}
	rest := p[i+len(marker):]
	if j := strings.Index(rest, "\n"); j >= 0 {
		rest = rest[:j]
	}
	return strings.TrimSpace(rest)
}

// ExtractSchemaText returns the schema-description portion of a translation
// prompt.
func ExtractSchemaText(p string) string {
	const marker = "Graph information:\n"
	if i := strings.Index(p, marker); i >= 0 {
		return p[i+len(marker):]
	}
	return ""
}

// IsFewShot reports whether a rule-generation prompt carries examples.
func IsFewShot(p string) bool { return strings.Contains(p, "Examples of consistency rules:") }
