package prompt

import (
	"strings"
	"testing"
)

func TestRuleGenerationZeroShot(t *testing.T) {
	p := RuleGeneration(ZeroShot, "Node 1 with labels User has no properties.")
	if !IsRuleGeneration(p) {
		t.Error("prompt should be recognized as rule generation")
	}
	if IsTranslation(p) {
		t.Error("rule-gen prompt misclassified as translation")
	}
	if IsFewShot(p) {
		t.Error("zero-shot prompt should carry no examples")
	}
	if got := ExtractGraphText(p); got != "Node 1 with labels User has no properties." {
		t.Errorf("ExtractGraphText = %q", got)
	}
}

func TestRuleGenerationFewShot(t *testing.T) {
	p := RuleGeneration(FewShot, "graph text")
	if !IsFewShot(p) {
		t.Error("few-shot prompt should carry examples")
	}
	if !strings.Contains(p, "RULE: Each Product node should have a unique sku property.") {
		t.Error("few-shot examples missing")
	}
	if ExtractGraphText(p) != "graph text" {
		t.Error("graph text extraction broken by examples")
	}
}

func TestCypherTranslation(t *testing.T) {
	p := CypherTranslation("Each User node should have a id property.", "Graph x: schema")
	if !IsTranslation(p) {
		t.Error("prompt should be recognized as translation")
	}
	if IsRuleGeneration(p) {
		t.Error("translation prompt misclassified as rule generation")
	}
	if got := ExtractRuleNL(p); got != "Each User node should have a id property." {
		t.Errorf("ExtractRuleNL = %q", got)
	}
	if got := ExtractSchemaText(p); got != "Graph x: schema" {
		t.Errorf("ExtractSchemaText = %q", got)
	}
}

func TestExtractorsOnForeignText(t *testing.T) {
	if ExtractGraphText("nothing here") != "" {
		t.Error("missing marker should yield empty graph text")
	}
	if ExtractRuleNL("nothing here") != "" {
		t.Error("missing marker should yield empty rule")
	}
	if ExtractSchemaText("nothing here") != "" {
		t.Error("missing marker should yield empty schema")
	}
}

func TestModeString(t *testing.T) {
	if ZeroShot.String() != "zero-shot" || FewShot.String() != "few-shot" {
		t.Error("mode names wrong")
	}
	if len(Modes) != 2 {
		t.Error("Modes should list both")
	}
}
