package rules

import (
	"fmt"

	"github.com/graphrules/graphrules/internal/graph"
)

// ---------- EdgeEndpoints ----------

// EdgeEndpoints requires every edge of a type to connect the stated labels:
// "Every POSTS relationship should connect a User to a Tweet."
type EdgeEndpoints struct {
	EdgeType  string
	FromLabel string
	ToLabel   string
}

// Kind implements Rule.
func (r *EdgeEndpoints) Kind() Kind { return KindEdgeEndpoints }

// Complexity implements Rule.
func (r *EdgeEndpoints) Complexity() Complexity { return Structural }

// NL implements Rule.
func (r *EdgeEndpoints) NL() string {
	return fmt.Sprintf("Every %s relationship should connect a %s node to a %s node.",
		r.EdgeType, r.FromLabel, r.ToLabel)
}

// Formal implements Rule.
func (r *EdgeEndpoints) Formal() string {
	return fmt.Sprintf("∀x,y: %s(x,y) → %s(x) ∧ %s(y)", r.EdgeType, r.FromLabel, r.ToLabel)
}

// DedupKey implements Rule.
func (r *EdgeEndpoints) DedupKey() string {
	return fmt.Sprintf("endpoints:%s:%s->%s", r.EdgeType, r.FromLabel, r.ToLabel)
}

// Queries implements Rule.
func (r *EdgeEndpoints) Queries() QuerySet {
	return QuerySet{
		Support: fmt.Sprintf("MATCH (a)-[r:%s]->(b) WHERE a:%s AND b:%s RETURN count(*) AS n",
			r.EdgeType, r.FromLabel, r.ToLabel),
		Body:      fmt.Sprintf("MATCH (a)-[r:%s]->(b) RETURN count(*) AS n", r.EdgeType),
		HeadTotal: fmt.Sprintf("MATCH (a)-[r:%s]->(b) RETURN count(*) AS n", r.EdgeType),
	}
}

// CountsNative implements Rule.
func (r *EdgeEndpoints) CountsNative(g *graph.Graph) (Counts, error) {
	var c Counts
	for _, id := range g.EdgesWithType(r.EdgeType) {
		c.Body++
		e := g.Edge(id)
		from, to := g.Node(e.From), g.Node(e.To)
		if from != nil && to != nil && from.HasLabel(r.FromLabel) && to.HasLabel(r.ToLabel) {
			c.Support++
		}
	}
	c.HeadTotal = c.Body
	return c, nil
}

// ---------- MandatoryEdge ----------

// MandatoryEdge requires every node of a label to have at least one edge of
// a type: "Every Tweet must be associated with a valid User who posted it."
type MandatoryEdge struct {
	Label      string
	EdgeType   string
	Incoming   bool // true: (other)-[:T]->(x); false: (x)-[:T]->(other)
	OtherLabel string
}

// Kind implements Rule.
func (r *MandatoryEdge) Kind() Kind { return KindMandatoryEdge }

// Complexity implements Rule.
func (r *MandatoryEdge) Complexity() Complexity { return Structural }

// NL implements Rule.
func (r *MandatoryEdge) NL() string {
	if r.Incoming {
		return fmt.Sprintf("Every %s node should have an incoming %s relationship from a %s node.",
			r.Label, r.EdgeType, r.OtherLabel)
	}
	return fmt.Sprintf("Every %s node should have an outgoing %s relationship to a %s node.",
		r.Label, r.EdgeType, r.OtherLabel)
}

// Formal implements Rule.
func (r *MandatoryEdge) Formal() string {
	if r.Incoming {
		return fmt.Sprintf("∀x: %s(x) → ∃y: %s(y) ∧ %s(y,x)", r.Label, r.OtherLabel, r.EdgeType)
	}
	return fmt.Sprintf("∀x: %s(x) → ∃y: %s(y) ∧ %s(x,y)", r.Label, r.OtherLabel, r.EdgeType)
}

// DedupKey implements Rule.
func (r *MandatoryEdge) DedupKey() string {
	dir := "out"
	if r.Incoming {
		dir = "in"
	}
	return fmt.Sprintf("mandatory:%s:%s:%s:%s", r.Label, dir, r.EdgeType, r.OtherLabel)
}

// Queries implements Rule.
func (r *MandatoryEdge) Queries() QuerySet {
	pat := fmt.Sprintf("(x)-[:%s]->(:%s)", r.EdgeType, r.OtherLabel)
	if r.Incoming {
		pat = fmt.Sprintf("(x)<-[:%s]-(:%s)", r.EdgeType, r.OtherLabel)
	}
	return QuerySet{
		Support:   fmt.Sprintf("MATCH (x:%s) WHERE %s RETURN count(*) AS n", r.Label, pat),
		Body:      fmt.Sprintf("MATCH (x:%s) RETURN count(*) AS n", r.Label),
		HeadTotal: fmt.Sprintf("MATCH (x:%s) RETURN count(*) AS n", r.Label),
	}
}

// CountsNative implements Rule.
func (r *MandatoryEdge) CountsNative(g *graph.Graph) (Counts, error) {
	var c Counts
	for _, id := range g.NodesWithLabel(r.Label) {
		c.Body++
		var edges []graph.ID
		if r.Incoming {
			edges = g.InEdges(id)
		} else {
			edges = g.OutEdges(id)
		}
		for _, eid := range edges {
			e := g.Edge(eid)
			if !e.HasLabel(r.EdgeType) {
				continue
			}
			other := e.From
			if !r.Incoming {
				other = e.To
			}
			if on := g.Node(other); on != nil && on.HasLabel(r.OtherLabel) {
				c.Support++
				break
			}
		}
	}
	c.HeadTotal = c.Body
	return c, nil
}

// ---------- NoSelfLoop ----------

// NoSelfLoop forbids self-edges of a type: "Users cannot follow themselves."
type NoSelfLoop struct {
	EdgeType string
}

// Kind implements Rule.
func (r *NoSelfLoop) Kind() Kind { return KindNoSelfLoop }

// Complexity implements Rule.
func (r *NoSelfLoop) Complexity() Complexity { return Structural }

// NL implements Rule.
func (r *NoSelfLoop) NL() string {
	return fmt.Sprintf("A node should not have a %s relationship to itself.", r.EdgeType)
}

// Formal implements Rule.
func (r *NoSelfLoop) Formal() string {
	return fmt.Sprintf("∀x,y: %s(x,y) → x ≠ y", r.EdgeType)
}

// DedupKey implements Rule.
func (r *NoSelfLoop) DedupKey() string { return "noselfloop:" + r.EdgeType }

// Queries implements Rule.
func (r *NoSelfLoop) Queries() QuerySet {
	return QuerySet{
		Support:   fmt.Sprintf("MATCH (a)-[r:%s]->(b) WHERE a <> b RETURN count(*) AS n", r.EdgeType),
		Body:      fmt.Sprintf("MATCH (a)-[r:%s]->(b) RETURN count(*) AS n", r.EdgeType),
		HeadTotal: fmt.Sprintf("MATCH (a)-[r:%s]->(b) RETURN count(*) AS n", r.EdgeType),
	}
}

// CountsNative implements Rule.
func (r *NoSelfLoop) CountsNative(g *graph.Graph) (Counts, error) {
	var c Counts
	for _, id := range g.EdgesWithType(r.EdgeType) {
		c.Body++
		e := g.Edge(id)
		if e.From != e.To {
			c.Support++
		}
	}
	c.HeadTotal = c.Body
	return c, nil
}

// ---------- TemporalOrder ----------

// TemporalOrder requires the source of an edge to be no older than the
// target on a timestamp property: "A retweet can occur only after the
// original tweet has been posted."
type TemporalOrder struct {
	EdgeType  string
	FromLabel string
	ToLabel   string
	Key       string // compared property; rule: from.Key >= to.Key
}

// Kind implements Rule.
func (r *TemporalOrder) Kind() Kind { return KindTemporalOrder }

// Complexity implements Rule.
func (r *TemporalOrder) Complexity() Complexity { return Complex }

// NL implements Rule.
func (r *TemporalOrder) NL() string {
	return fmt.Sprintf("For every %s relationship, the %s of the source %s should not be earlier than the %s of the target %s (the two events cannot be out of order).",
		r.EdgeType, r.Key, r.FromLabel, r.Key, r.ToLabel)
}

// Formal implements Rule.
func (r *TemporalOrder) Formal() string {
	return fmt.Sprintf("∀x,y: %s(x,y) → x.%s ≥ y.%s", r.EdgeType, r.Key, r.Key)
}

// DedupKey implements Rule.
func (r *TemporalOrder) DedupKey() string {
	return fmt.Sprintf("temporal:%s:%s", r.EdgeType, r.Key)
}

// Queries implements Rule.
func (r *TemporalOrder) Queries() QuerySet {
	return QuerySet{
		Support: fmt.Sprintf(
			"MATCH (a:%s)-[r:%s]->(b:%s) WHERE a.%s IS NOT NULL AND b.%s IS NOT NULL AND a.%s >= b.%s RETURN count(*) AS n",
			r.FromLabel, r.EdgeType, r.ToLabel, r.Key, r.Key, r.Key, r.Key),
		Body: fmt.Sprintf(
			"MATCH (a:%s)-[r:%s]->(b:%s) WHERE a.%s IS NOT NULL AND b.%s IS NOT NULL RETURN count(*) AS n",
			r.FromLabel, r.EdgeType, r.ToLabel, r.Key, r.Key),
		HeadTotal: fmt.Sprintf("MATCH (a:%s)-[r:%s]->(b:%s) RETURN count(*) AS n",
			r.FromLabel, r.EdgeType, r.ToLabel),
	}
}

// CountsNative implements Rule.
func (r *TemporalOrder) CountsNative(g *graph.Graph) (Counts, error) {
	var c Counts
	for _, id := range g.EdgesWithType(r.EdgeType) {
		e := g.Edge(id)
		from, to := g.Node(e.From), g.Node(e.To)
		if from == nil || to == nil || !from.HasLabel(r.FromLabel) || !to.HasLabel(r.ToLabel) {
			continue
		}
		c.HeadTotal++
		fv, tv := from.Prop(r.Key), to.Prop(r.Key)
		if fv.IsNull() || tv.IsNull() {
			continue
		}
		c.Body++
		if cv, ok := fv.Compare(tv); ok && cv >= 0 {
			c.Support++
		}
	}
	return c, nil
}

// ---------- UniqueEdgeProp ----------

// UniqueEdgeProp forbids two parallel edges of a type between the same
// endpoints sharing a property value: "No two SCORED_GOAL relationships
// between a Person and a Match should have the same minute property."
type UniqueEdgeProp struct {
	EdgeType  string
	FromLabel string
	ToLabel   string
	Key       string
}

// Kind implements Rule.
func (r *UniqueEdgeProp) Kind() Kind { return KindUniqueEdgeProp }

// Complexity implements Rule.
func (r *UniqueEdgeProp) Complexity() Complexity { return Complex }

// NL implements Rule.
func (r *UniqueEdgeProp) NL() string {
	return fmt.Sprintf("No two %s relationships between the same %s and %s should have the same %s property.",
		r.EdgeType, r.FromLabel, r.ToLabel, r.Key)
}

// Formal implements Rule.
func (r *UniqueEdgeProp) Formal() string {
	return fmt.Sprintf("∀e1,e2 ∈ %s(x,y): e1.%s = e2.%s → e1 = e2", r.EdgeType, r.Key, r.Key)
}

// DedupKey implements Rule.
func (r *UniqueEdgeProp) DedupKey() string {
	return fmt.Sprintf("uniqueedge:%s.%s", r.EdgeType, r.Key)
}

// Queries implements Rule.
func (r *UniqueEdgeProp) Queries() QuerySet {
	return QuerySet{
		Support: fmt.Sprintf(
			"MATCH (a:%s)-[r:%s]->(b:%s) WHERE r.%s IS NOT NULL WITH a, b, r.%s AS v, count(*) AS c WHERE c = 1 RETURN count(*) AS n",
			r.FromLabel, r.EdgeType, r.ToLabel, r.Key, r.Key),
		Body: fmt.Sprintf(
			"MATCH (a:%s)-[r:%s]->(b:%s) WHERE r.%s IS NOT NULL RETURN count(*) AS n",
			r.FromLabel, r.EdgeType, r.ToLabel, r.Key),
		HeadTotal: fmt.Sprintf("MATCH (a:%s)-[r:%s]->(b:%s) RETURN count(*) AS n",
			r.FromLabel, r.EdgeType, r.ToLabel),
	}
}

// CountsNative implements Rule.
func (r *UniqueEdgeProp) CountsNative(g *graph.Graph) (Counts, error) {
	var c Counts
	groups := map[string]int64{}
	for _, id := range g.EdgesWithType(r.EdgeType) {
		e := g.Edge(id)
		from, to := g.Node(e.From), g.Node(e.To)
		if from == nil || to == nil || !from.HasLabel(r.FromLabel) || !to.HasLabel(r.ToLabel) {
			continue
		}
		c.HeadTotal++
		v := e.Prop(r.Key)
		if v.IsNull() {
			continue
		}
		c.Body++
		groups[fmt.Sprintf("%d|%d|%s", e.From, e.To, v.Hashable())]++
	}
	for _, n := range groups {
		if n == 1 {
			c.Support++
		}
	}
	return c, nil
}

// ---------- PathAssociation ----------

// PathAssociation is the multi-hop association rule of §4.5: whenever the
// body path (a:A)-[:E1]->(b:B)-[:E2]->(c:C) matches, the association
// (a)-[:ReqE1]->(:ReqLabel)-[:ReqE2]->(c) must also exist. Example: "A
// player should be associated with a squad, and that squad should belong to
// the tournament for which the player has played a match."
type PathAssociation struct {
	ALabel string
	E1     string
	BLabel string
	E2     string
	CLabel string

	ReqE1    string
	ReqLabel string
	ReqE2    string
}

// Kind implements Rule.
func (r *PathAssociation) Kind() Kind { return KindPathAssociation }

// Complexity implements Rule.
func (r *PathAssociation) Complexity() Complexity { return Complex }

// NL implements Rule.
func (r *PathAssociation) NL() string {
	return fmt.Sprintf("Whenever a %s has a %s to a %s that has a %s to a %s, the %s should also be associated through %s with a %s that has a %s to that same %s.",
		r.ALabel, r.E1, r.BLabel, r.E2, r.CLabel, r.ALabel, r.ReqE1, r.ReqLabel, r.ReqE2, r.CLabel)
}

// Formal implements Rule.
func (r *PathAssociation) Formal() string {
	return fmt.Sprintf("∀a,b,c: %s(a) ∧ %s(a,b) ∧ %s(b) ∧ %s(b,c) ∧ %s(c) → ∃d: %s(a,d) ∧ %s(d) ∧ %s(d,c)",
		r.ALabel, r.E1, r.BLabel, r.E2, r.CLabel, r.ReqE1, r.ReqLabel, r.ReqE2)
}

// DedupKey implements Rule.
func (r *PathAssociation) DedupKey() string {
	return fmt.Sprintf("assoc:%s-%s-%s-%s-%s:%s-%s-%s",
		r.ALabel, r.E1, r.BLabel, r.E2, r.CLabel, r.ReqE1, r.ReqLabel, r.ReqE2)
}

// Queries implements Rule.
func (r *PathAssociation) Queries() QuerySet {
	body := fmt.Sprintf("MATCH (a:%s)-[:%s]->(b:%s)-[:%s]->(c:%s)", r.ALabel, r.E1, r.BLabel, r.E2, r.CLabel)
	req := fmt.Sprintf("(a)-[:%s]->(:%s)-[:%s]->(c)", r.ReqE1, r.ReqLabel, r.ReqE2)
	return QuerySet{
		Support:   fmt.Sprintf("%s WHERE %s RETURN count(*) AS n", body, req),
		Body:      fmt.Sprintf("%s RETURN count(*) AS n", body),
		HeadTotal: fmt.Sprintf("%s RETURN count(*) AS n", body),
	}
}

// CountsNative implements Rule.
func (r *PathAssociation) CountsNative(g *graph.Graph) (Counts, error) {
	var c Counts
	// Precompute, for each A node, the set of C nodes reachable through the
	// required association.
	reqReach := map[graph.ID]map[graph.ID]bool{}
	for _, aid := range g.NodesWithLabel(r.ALabel) {
		for _, e1 := range g.OutEdges(aid) {
			edge1 := g.Edge(e1)
			if !edge1.HasLabel(r.ReqE1) {
				continue
			}
			d := g.Node(edge1.To)
			if d == nil || !d.HasLabel(r.ReqLabel) {
				continue
			}
			for _, e2 := range g.OutEdges(d.ID) {
				edge2 := g.Edge(e2)
				if !edge2.HasLabel(r.ReqE2) {
					continue
				}
				cNode := g.Node(edge2.To)
				if cNode == nil || !cNode.HasLabel(r.CLabel) {
					continue
				}
				set := reqReach[aid]
				if set == nil {
					set = map[graph.ID]bool{}
					reqReach[aid] = set
				}
				set[cNode.ID] = true
			}
		}
	}
	for _, aid := range g.NodesWithLabel(r.ALabel) {
		a := g.Node(aid)
		if !a.HasLabel(r.ALabel) {
			continue
		}
		for _, e1 := range g.OutEdges(aid) {
			edge1 := g.Edge(e1)
			if !edge1.HasLabel(r.E1) {
				continue
			}
			b := g.Node(edge1.To)
			if b == nil || !b.HasLabel(r.BLabel) {
				continue
			}
			for _, e2 := range g.OutEdges(b.ID) {
				edge2 := g.Edge(e2)
				if !edge2.HasLabel(r.E2) {
					continue
				}
				cNode := g.Node(edge2.To)
				if cNode == nil || !cNode.HasLabel(r.CLabel) {
					continue
				}
				c.Body++
				if reqReach[aid][cNode.ID] {
					c.Support++
				}
			}
		}
	}
	c.HeadTotal = c.Body
	return c, nil
}
