package rules

import (
	"strings"
	"testing"

	"github.com/graphrules/graphrules/internal/cypher"
	"github.com/graphrules/graphrules/internal/graph"
)

// fixture builds a graph with known violations of every rule kind.
func fixture() *graph.Graph {
	g := graph.New("rf")
	// Users: u3 misses name; u1/u2 share id 1; u3 has string "true" for a
	// bool prop; u1 has malformed mail.
	u1 := g.AddNode([]string{"User"}, graph.Props{"id": graph.NewInt(1), "name": graph.NewString("a"), "active": graph.NewBool(true), "mail": graph.NewString("not-a-mail")})
	u2 := g.AddNode([]string{"User"}, graph.Props{"id": graph.NewInt(1), "name": graph.NewString("b"), "active": graph.NewBool(false), "mail": graph.NewString("b@x.io")})
	u3 := g.AddNode([]string{"User"}, graph.Props{"id": graph.NewInt(3), "active": graph.NewString("true"), "mail": graph.NewString("c@x.io")})
	// Tweets: t1 posted by u1; t2 orphan. t2 older than t1; t2 retweets t1
	// (temporal violation).
	t1 := g.AddNode([]string{"Tweet"}, graph.Props{"id": graph.NewInt(10), "at": graph.NewInt(100)})
	t2 := g.AddNode([]string{"Tweet"}, graph.Props{"id": graph.NewInt(11), "at": graph.NewInt(50)})
	g.MustAddEdge(u1.ID, t1.ID, []string{"POSTS"}, nil)
	// Endpoint violation: a POSTS from a Tweet.
	g.MustAddEdge(t1.ID, t2.ID, []string{"POSTS"}, nil)
	// Self-loop violation.
	g.MustAddEdge(u2.ID, u2.ID, []string{"FOLLOWS"}, nil)
	g.MustAddEdge(u1.ID, u2.ID, []string{"FOLLOWS"}, nil)
	// Temporal: t2(50) retweets t1(100): violation. t1 retweets t2: fine.
	g.MustAddEdge(t2.ID, t1.ID, []string{"RETWEETS"}, nil)
	g.MustAddEdge(t1.ID, t2.ID, []string{"RETWEETS"}, nil)
	// SCORED-style duplicate edge property.
	m := g.AddNode([]string{"Match"}, graph.Props{"id": graph.NewInt(99)})
	g.MustAddEdge(u1.ID, m.ID, []string{"SCORED"}, graph.Props{"minute": graph.NewInt(5)})
	g.MustAddEdge(u1.ID, m.ID, []string{"SCORED"}, graph.Props{"minute": graph.NewInt(5)})
	g.MustAddEdge(u2.ID, m.ID, []string{"SCORED"}, graph.Props{"minute": graph.NewInt(5)})
	// Path association: u1 PLAYED m, u1 IN_SQUAD s, s FOR c1 (match's comp);
	// u2 PLAYED m without squad association.
	comp := g.AddNode([]string{"Comp"}, graph.Props{"id": graph.NewInt(7)})
	s := g.AddNode([]string{"Squad"}, nil)
	g.MustAddEdge(m.ID, comp.ID, []string{"IN_COMP"}, nil)
	g.MustAddEdge(u1.ID, m.ID, []string{"PLAYED"}, nil)
	g.MustAddEdge(u2.ID, m.ID, []string{"PLAYED"}, nil)
	g.MustAddEdge(u1.ID, s.ID, []string{"IN_SQUAD"}, nil)
	g.MustAddEdge(s.ID, comp.ID, []string{"FOR"}, nil)
	_ = u3
	return g
}

// allRules returns one instance of every rule kind, with expected counts.
func allRules() []struct {
	r    Rule
	want Counts
} {
	return []struct {
		r    Rule
		want Counts
	}{
		{&RequiredProperty{Label: "User", Key: "name"}, Counts{Support: 2, Body: 3, HeadTotal: 3}},
		{&RequiredProperty{Label: "SCORED", Key: "minute", OnEdge: true}, Counts{Support: 3, Body: 3, HeadTotal: 3}},
		{&UniqueProperty{Label: "User", Key: "id"}, Counts{Support: 1, Body: 3, HeadTotal: 3}},
		{&ValueDomain{Label: "User", Key: "active", Allowed: []graph.Value{graph.NewBool(true), graph.NewBool(false)}}, Counts{Support: 2, Body: 3, HeadTotal: 3}},
		{&ValueFormat{Label: "User", Key: "mail", Pattern: `[a-z]+@[a-z]+\.[a-z]{2,}`}, Counts{Support: 2, Body: 3, HeadTotal: 3}},
		{&PropertyType{Label: "User", Key: "active", PropKind: graph.KindBool}, Counts{Support: 2, Body: 3, HeadTotal: 3}},
		{&EdgeEndpoints{EdgeType: "POSTS", FromLabel: "User", ToLabel: "Tweet"}, Counts{Support: 1, Body: 2, HeadTotal: 2}},
		{&MandatoryEdge{Label: "Tweet", EdgeType: "POSTS", Incoming: true, OtherLabel: "User"}, Counts{Support: 1, Body: 2, HeadTotal: 2}},
		{&NoSelfLoop{EdgeType: "FOLLOWS"}, Counts{Support: 1, Body: 2, HeadTotal: 2}},
		{&TemporalOrder{EdgeType: "RETWEETS", FromLabel: "Tweet", ToLabel: "Tweet", Key: "at"}, Counts{Support: 1, Body: 2, HeadTotal: 2}},
		{&UniqueEdgeProp{EdgeType: "SCORED", FromLabel: "User", ToLabel: "Match", Key: "minute"}, Counts{Support: 1, Body: 3, HeadTotal: 3}},
		{&PathAssociation{ALabel: "User", E1: "PLAYED", BLabel: "Match", E2: "IN_COMP", CLabel: "Comp",
			ReqE1: "IN_SQUAD", ReqLabel: "Squad", ReqE2: "FOR"}, Counts{Support: 1, Body: 2, HeadTotal: 2}},
	}
}

func TestCountsNative(t *testing.T) {
	g := fixture()
	for _, tc := range allRules() {
		got, err := tc.r.CountsNative(g)
		if err != nil {
			t.Errorf("%s: %v", tc.r.DedupKey(), err)
			continue
		}
		if got != tc.want {
			t.Errorf("%s: native counts = %+v, want %+v", tc.r.DedupKey(), got, tc.want)
		}
	}
}

// TestCypherMatchesNative is the dual-path invariant: for every rule kind,
// executing the reference Cypher yields exactly the native counts.
func TestCypherMatchesNative(t *testing.T) {
	g := fixture()
	ex := cypher.NewExecutor(g)
	for _, tc := range allRules() {
		qs := tc.r.Queries()
		runCount := func(src string) int64 {
			t.Helper()
			res, err := ex.Run(src, nil)
			if err != nil {
				t.Fatalf("%s: query %q failed: %v", tc.r.DedupKey(), src, err)
			}
			return res.FirstInt("n")
		}
		got := Counts{
			Support:   runCount(qs.Support),
			Body:      runCount(qs.Body),
			HeadTotal: runCount(qs.HeadTotal),
		}
		native, _ := tc.r.CountsNative(g)
		if got != native {
			t.Errorf("%s: cypher counts = %+v, native = %+v", tc.r.DedupKey(), got, native)
		}
	}
}

func TestMetricsMath(t *testing.T) {
	c := Counts{Support: 3, Body: 4, HeadTotal: 6}
	if cov := c.Coverage(); cov != 50 {
		t.Errorf("coverage = %f", cov)
	}
	if conf := c.Confidence(); conf != 75 {
		t.Errorf("confidence = %f", conf)
	}
	zero := Counts{}
	if zero.Coverage() != 0 || zero.Confidence() != 0 {
		t.Error("zero counts should yield zero metrics")
	}
}

func TestNLAndFormalNonEmpty(t *testing.T) {
	for _, tc := range allRules() {
		if tc.r.NL() == "" || tc.r.Formal() == "" {
			t.Errorf("%s: empty rendering", tc.r.DedupKey())
		}
		if tc.r.Kind().String() == "" {
			t.Error("kind string empty")
		}
		// NL statements read like sentences.
		if !strings.HasSuffix(tc.r.NL(), ".") {
			t.Errorf("%s: NL should end with a period: %q", tc.r.DedupKey(), tc.r.NL())
		}
	}
	if Kind(200).String() == "" {
		t.Error("unknown kind should still render")
	}
}

func TestComplexityClasses(t *testing.T) {
	if (&RequiredProperty{}).Complexity() != Simple {
		t.Error("required-property should be simple")
	}
	if (&NoSelfLoop{}).Complexity() != Structural {
		t.Error("no-self-loop should be structural")
	}
	if (&PathAssociation{}).Complexity() != Complex {
		t.Error("path-association should be complex")
	}
	if (&TemporalOrder{}).Complexity() != Complex {
		t.Error("temporal-order should be complex")
	}
}

func TestDedupe(t *testing.T) {
	a := &UniqueProperty{Label: "User", Key: "id"}
	b := &UniqueProperty{Label: "User", Key: "id"}
	c := &UniqueProperty{Label: "User", Key: "mail"}
	out := Dedupe([]Rule{a, b, c, a})
	if len(out) != 2 {
		t.Fatalf("dedupe kept %d", len(out))
	}
	if out[0] != Rule(a) || out[1] != Rule(c) {
		t.Error("dedupe order wrong")
	}
	SortRules(out)
	if out[0].DedupKey() > out[1].DedupKey() {
		t.Error("sort wrong")
	}
}

func TestValueFormatBadPattern(t *testing.T) {
	r := &ValueFormat{Label: "User", Key: "mail", Pattern: "["}
	if _, err := r.CountsNative(graph.New("x")); err == nil {
		t.Error("bad pattern should error")
	}
}

func TestQueriesAreParseable(t *testing.T) {
	for _, tc := range allRules() {
		qs := tc.r.Queries()
		for _, src := range []string{qs.Support, qs.Body, qs.HeadTotal} {
			if _, err := cypher.Parse(src); err != nil {
				t.Errorf("%s: reference query does not parse: %v\n%s", tc.r.DedupKey(), err, src)
			}
		}
	}
}
