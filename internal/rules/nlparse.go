package rules

import (
	"regexp"
	"strings"

	"github.com/graphrules/graphrules/internal/graph"
)

// ParseNL parses a natural-language rule statement back into a Rule. It is
// the exact inverse of each rule kind's NL rendering; the mining pipeline
// uses it to turn the LLM's textual output into evaluable rules. Unknown
// phrasing reports ok=false.
func ParseNL(line string) (Rule, bool) {
	line = strings.TrimSpace(line)
	for _, p := range nlParsers {
		if m := p.re.FindStringSubmatch(line); m != nil {
			if r := p.build(m); r != nil {
				return r, true
			}
		}
	}
	return nil, false
}

type nlParser struct {
	re    *regexp.Regexp
	build func(m []string) Rule
}

const (
	nameRe = `([A-Za-z_][A-Za-z0-9_]*)`
)

var nlParsers = []nlParser{
	{
		// "Each Tweet node should have a unique id property."
		re: regexp.MustCompile(`^Each ` + nameRe + ` node should have a unique ` + nameRe + ` property\.$`),
		build: func(m []string) Rule {
			return &UniqueProperty{Label: m[1], Key: m[2]}
		},
	},
	{
		// "Each Match node should have a date property."
		re: regexp.MustCompile(`^Each ` + nameRe + ` (node|relationship) should have a ` + nameRe + ` property\.$`),
		build: func(m []string) Rule {
			return &RequiredProperty{Label: m[1], Key: m[3], OnEdge: m[2] == "relationship"}
		},
	},
	{
		// "The owned property of User nodes should only be one of true or false."
		re: regexp.MustCompile(`^The ` + nameRe + ` property of ` + nameRe + ` nodes should only be one of (.+)\.$`),
		build: func(m []string) Rule {
			var allowed []graph.Value
			for _, part := range strings.Split(m[3], " or ") {
				v, ok := graph.ParseLiteral(strings.TrimSpace(part))
				if !ok {
					return nil
				}
				allowed = append(allowed, v)
			}
			return &ValueDomain{Label: m[2], Key: m[1], Allowed: allowed}
		},
	},
	{
		// "The domain property of Domain nodes should be a string value matching the format <regex>."
		re: regexp.MustCompile(`^The ` + nameRe + ` property of ` + nameRe + ` nodes should be a string value matching the format (.+)\.$`),
		build: func(m []string) Rule {
			return &ValueFormat{Label: m[2], Key: m[1], Pattern: m[3]}
		},
	},
	{
		// "The followers property of User nodes should be of type int."
		re: regexp.MustCompile(`^The ` + nameRe + ` property of ` + nameRe + ` (nodes|relationships) should be of type (null|bool|int|float|string|list)\.$`),
		build: func(m []string) Rule {
			return &PropertyType{Label: m[2], Key: m[1], OnEdge: m[3] == "relationships", PropKind: kindByName(m[4])}
		},
	},
	{
		// "Every POSTS relationship should connect a User node to a Tweet node."
		re: regexp.MustCompile(`^Every ` + nameRe + ` relationship should connect a ` + nameRe + ` node to a ` + nameRe + ` node\.$`),
		build: func(m []string) Rule {
			return &EdgeEndpoints{EdgeType: m[1], FromLabel: m[2], ToLabel: m[3]}
		},
	},
	{
		// "Every Tweet node should have an incoming POSTS relationship from a User node."
		re: regexp.MustCompile(`^Every ` + nameRe + ` node should have an (incoming|outgoing) ` + nameRe + ` relationship (?:from|to) a ` + nameRe + ` node\.$`),
		build: func(m []string) Rule {
			return &MandatoryEdge{Label: m[1], EdgeType: m[3], Incoming: m[2] == "incoming", OtherLabel: m[4]}
		},
	},
	{
		// "A node should not have a FOLLOWS relationship to itself."
		re: regexp.MustCompile(`^A node should not have a ` + nameRe + ` relationship to itself\.$`),
		build: func(m []string) Rule {
			return &NoSelfLoop{EdgeType: m[1]}
		},
	},
	{
		// "For every RETWEETS relationship, the createdAt of the source Tweet
		//  should not be earlier than the createdAt of the target Tweet (the
		//  two events cannot be out of order)."
		re: regexp.MustCompile(`^For every ` + nameRe + ` relationship, the ` + nameRe + ` of the source ` + nameRe +
			` should not be earlier than the ` + nameRe + ` of the target ` + nameRe + ` \(the two events cannot be out of order\)\.$`),
		build: func(m []string) Rule {
			if m[2] != m[4] {
				return nil
			}
			return &TemporalOrder{EdgeType: m[1], FromLabel: m[3], ToLabel: m[5], Key: m[2]}
		},
	},
	{
		// "No two SCORED_GOAL relationships between the same Person and Match
		//  should have the same minute property."
		re: regexp.MustCompile(`^No two ` + nameRe + ` relationships between the same ` + nameRe + ` and ` + nameRe +
			` should have the same ` + nameRe + ` property\.$`),
		build: func(m []string) Rule {
			return &UniqueEdgeProp{EdgeType: m[1], FromLabel: m[2], ToLabel: m[3], Key: m[4]}
		},
	},
	{
		// "Whenever a Person has a PLAYED_IN to a Match that has a
		//  IN_TOURNAMENT to a Tournament, the Person should also be associated
		//  through IN_SQUAD with a Squad that has a FOR to that same Tournament."
		re: regexp.MustCompile(`^Whenever a ` + nameRe + ` has a ` + nameRe + ` to a ` + nameRe + ` that has a ` + nameRe +
			` to a ` + nameRe + `, the ` + nameRe + ` should also be associated through ` + nameRe + ` with a ` + nameRe +
			` that has a ` + nameRe + ` to that same ` + nameRe + `\.$`),
		build: func(m []string) Rule {
			if m[1] != m[6] || m[5] != m[10] {
				return nil
			}
			return &PathAssociation{
				ALabel: m[1], E1: m[2], BLabel: m[3], E2: m[4], CLabel: m[5],
				ReqE1: m[7], ReqLabel: m[8], ReqE2: m[9],
			}
		},
	},
}

func kindByName(name string) graph.Kind {
	switch name {
	case "bool":
		return graph.KindBool
	case "int":
		return graph.KindInt
	case "float":
		return graph.KindFloat
	case "string":
		return graph.KindString
	case "list":
		return graph.KindList
	default:
		return graph.KindNull
	}
}
