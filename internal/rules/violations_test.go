package rules

import (
	"strings"
	"testing"

	"github.com/graphrules/graphrules/internal/cypher"
	"github.com/graphrules/graphrules/internal/graph"
)

// TestViolationsQueriesExecute runs every rule kind's violation query on
// the fixture and checks the row count equals body - support (the
// violation count by definition).
func TestViolationsQueriesExecute(t *testing.T) {
	g := fixture()
	ex := cypher.NewExecutor(g)
	for _, tc := range allRules() {
		q, err := Violations(tc.r, 1000)
		if err != nil {
			t.Errorf("%s: %v", tc.r.DedupKey(), err)
			continue
		}
		res, err := ex.Run(q, nil)
		if err != nil {
			t.Errorf("%s: violation query failed: %v\n%s", tc.r.DedupKey(), err, q)
			continue
		}
		counts, _ := tc.r.CountsNative(g)
		wantViolations := counts.Body - counts.Support
		// Grouped queries (uniqueness kinds) return one row per violating
		// group, not per element; allow rows <= violations there.
		switch tc.r.Kind() {
		case KindUniqueProperty, KindUniqueEdgeProp:
			if wantViolations > 0 && res.Len() == 0 {
				t.Errorf("%s: expected violation groups, got none", tc.r.DedupKey())
			}
			if wantViolations == 0 && res.Len() != 0 {
				t.Errorf("%s: unexpected violation groups", tc.r.DedupKey())
			}
		default:
			if int64(res.Len()) != wantViolations {
				t.Errorf("%s: violation rows = %d, want %d (counts %+v)\n%s",
					tc.r.DedupKey(), res.Len(), wantViolations, counts, q)
			}
		}
	}
}

func TestViolationsLimit(t *testing.T) {
	g := graph.New("lim")
	for i := 0; i < 50; i++ {
		g.AddNode([]string{"N"}, graph.Props{}) // all missing "k"
	}
	r := &RequiredProperty{Label: "N", Key: "k"}
	q, err := Violations(r, 10)
	if err != nil {
		t.Fatal(err)
	}
	res, err := cypher.NewExecutor(g).Run(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 10 {
		t.Errorf("limit not applied: %d rows", res.Len())
	}
	// Default limit.
	q, _ = Violations(r, 0)
	res, _ = cypher.NewExecutor(g).Run(q, nil)
	if res.Len() != 25 {
		t.Errorf("default limit = %d rows", res.Len())
	}
}

func TestViolationsFormatEscaping(t *testing.T) {
	g := graph.New("esc")
	g.AddNode([]string{"N"}, graph.Props{"k": graph.NewString("x")})
	g.AddNode([]string{"N"}, graph.Props{"k": graph.NewString("2020-01-01")})
	r := &ValueFormat{Label: "N", Key: "k", Pattern: `\d{4}-\d{2}-\d{2}`}
	q, err := Violations(r, 10)
	if err != nil {
		t.Fatal(err)
	}
	res, err := cypher.NewExecutor(g).Run(q, nil)
	if err != nil {
		t.Fatalf("escaped pattern should execute: %v\n%s", err, q)
	}
	if res.Len() != 1 || res.Value(0, "value").Str() != "x" {
		t.Errorf("violations = %+v", res.Rows)
	}
}

func TestExplain(t *testing.T) {
	r := &UniqueProperty{Label: "Tweet", Key: "id"}
	s := Explain(r, Counts{Support: 90, Body: 100, HeadTotal: 120})
	for _, want := range []string{
		"Each Tweet node should have a unique id property.",
		"violated by 10 element(s)",
		"confidence 90.0%",
		"75.0%",
		"∀x,y",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("Explain missing %q in:\n%s", want, s)
		}
	}
	clean := Explain(r, Counts{Support: 100, Body: 100, HeadTotal: 100})
	if !strings.Contains(clean, "always satisfied") {
		t.Error("clean rule should read as always satisfied")
	}
}
