package rules

import (
	"testing"

	"github.com/graphrules/graphrules/internal/graph"
)

// TestNLRoundTrip verifies that ParseNL is the exact inverse of NL for
// every rule kind.
func TestNLRoundTrip(t *testing.T) {
	cases := []Rule{
		&RequiredProperty{Label: "Match", Key: "date"},
		&RequiredProperty{Label: "SCORED_GOAL", Key: "minute", OnEdge: true},
		&UniqueProperty{Label: "Tweet", Key: "id"},
		&ValueDomain{Label: "User", Key: "owned", Allowed: []graph.Value{graph.NewBool(true), graph.NewBool(false)}},
		&ValueDomain{Label: "Match", Key: "stage", Allowed: []graph.Value{graph.NewString("Final"), graph.NewString("Semi-final")}},
		&ValueFormat{Label: "Domain", Key: "domain", Pattern: `([a-zA-Z0-9-]+\.)+[a-zA-Z]{2,}`},
		&PropertyType{Label: "User", Key: "followers", PropKind: graph.KindInt},
		&PropertyType{Label: "GP_LINK", Key: "enforced", OnEdge: true, PropKind: graph.KindBool},
		&EdgeEndpoints{EdgeType: "POSTS", FromLabel: "User", ToLabel: "Tweet"},
		&MandatoryEdge{Label: "Tweet", EdgeType: "POSTS", Incoming: true, OtherLabel: "User"},
		&MandatoryEdge{Label: "Squad", EdgeType: "FOR", Incoming: false, OtherLabel: "Tournament"},
		&NoSelfLoop{EdgeType: "FOLLOWS"},
		&TemporalOrder{EdgeType: "RETWEETS", FromLabel: "Tweet", ToLabel: "Tweet", Key: "createdAt"},
		&UniqueEdgeProp{EdgeType: "SCORED_GOAL", FromLabel: "Person", ToLabel: "Match", Key: "minute"},
		&PathAssociation{ALabel: "Person", E1: "PLAYED_IN", BLabel: "Match", E2: "IN_TOURNAMENT", CLabel: "Tournament",
			ReqE1: "IN_SQUAD", ReqLabel: "Squad", ReqE2: "FOR"},
	}
	for _, want := range cases {
		nl := want.NL()
		got, ok := ParseNL(nl)
		if !ok {
			t.Errorf("ParseNL failed for %q", nl)
			continue
		}
		if got.DedupKey() != want.DedupKey() {
			t.Errorf("round trip mismatch:\n nl:   %s\n got:  %s\n want: %s", nl, got.DedupKey(), want.DedupKey())
		}
		if got.Kind() != want.Kind() {
			t.Errorf("kind mismatch for %q", nl)
		}
	}
}

func TestParseNLRejectsGarbage(t *testing.T) {
	for _, line := range []string{
		"",
		"This is not a rule.",
		"Each node should have a property.",
		"Each  node should have a id property.",
		"The x property of Y nodes should only be one of purple elephants.",
	} {
		if r, ok := ParseNL(line); ok {
			t.Errorf("ParseNL(%q) unexpectedly parsed as %s", line, r.DedupKey())
		}
	}
}

func TestParseNLTrimsWhitespace(t *testing.T) {
	r, ok := ParseNL("   Each Tweet node should have a unique id property.  ")
	if !ok || r.Kind() != KindUniqueProperty {
		t.Error("whitespace should be tolerated")
	}
}

func TestParseLiteralHelpers(t *testing.T) {
	cases := map[string]graph.Value{
		"null":      graph.Null,
		"true":      graph.NewBool(true),
		"42":        graph.NewInt(42),
		"-7":        graph.NewInt(-7),
		"2.5":       graph.NewFloat(2.5),
		`"hi"`:      graph.NewString("hi"),
		`[1, 2]`:    graph.NewList(graph.NewInt(1), graph.NewInt(2)),
		`["a", []]`: graph.NewList(graph.NewString("a"), graph.NewList()),
	}
	for in, want := range cases {
		got, ok := graph.ParseLiteral(in)
		if !ok {
			t.Errorf("ParseLiteral(%q) failed", in)
			continue
		}
		if got.String() != want.String() {
			t.Errorf("ParseLiteral(%q) = %s, want %s", in, got, want)
		}
	}
	for _, bad := range []string{"", "nope", `"unterminated`, "[1,", "[bad]"} {
		if _, ok := graph.ParseLiteral(bad); ok {
			t.Errorf("ParseLiteral(%q) should fail", bad)
		}
	}
}
