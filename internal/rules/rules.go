// Package rules models property-graph consistency rules: the schema-level
// and pattern-level constraints the paper's LLM pipeline mines (§3, §4.5).
//
// Every rule renders three ways:
//
//   - NL(): the natural-language statement the LLM emits in step 1;
//   - Queries(): reference Cypher computing the paper's adapted AMIE
//     metrics (§4.2) — support, body-match and head-total counts;
//   - CountsNative(): a direct graph-walk evaluation used to cross-check
//     the Cypher path (the metric layer's core correctness invariant).
//
// Metric semantics (§4.2, adapted to property graphs):
//
//	support    = elements satisfying premise ∧ conclusion (raw count)
//	coverage   = support / head-total  (all facts the head speaks about)
//	confidence = support / body       (facts where the premise holds)
package rules

import (
	"fmt"
	"regexp"
	"sort"
	"strings"

	"github.com/graphrules/graphrules/internal/graph"
)

// Kind enumerates rule families.
type Kind uint8

const (
	KindRequiredProperty Kind = iota
	KindUniqueProperty
	KindValueDomain
	KindValueFormat
	KindPropertyType
	KindEdgeEndpoints
	KindMandatoryEdge
	KindNoSelfLoop
	KindTemporalOrder
	KindUniqueEdgeProp
	KindPathAssociation
)

// String returns the kind's kebab-case name.
func (k Kind) String() string {
	switch k {
	case KindRequiredProperty:
		return "required-property"
	case KindUniqueProperty:
		return "unique-property"
	case KindValueDomain:
		return "value-domain"
	case KindValueFormat:
		return "value-format"
	case KindPropertyType:
		return "property-type"
	case KindEdgeEndpoints:
		return "edge-endpoints"
	case KindMandatoryEdge:
		return "mandatory-edge"
	case KindNoSelfLoop:
		return "no-self-loop"
	case KindTemporalOrder:
		return "temporal-order"
	case KindUniqueEdgeProp:
		return "unique-edge-property"
	case KindPathAssociation:
		return "path-association"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Complexity classifies how structurally involved a rule is; the paper
// observes LLaMA-3 favouring simple schema rules and Mixtral occasionally
// producing complex multi-hop/temporal ones (§4.5).
type Complexity uint8

const (
	// Simple rules constrain one label's schema (keys, uniqueness, types).
	Simple Complexity = iota
	// Structural rules constrain one relationship (endpoints, self-loops,
	// mandatory edges).
	Structural
	// Complex rules span multiple hops or compare values across elements.
	Complex
)

// QuerySet is the reference Cypher for a rule's three metric counts. Every
// query returns a single row with a single integer column named `n`.
type QuerySet struct {
	Support   string // premise ∧ conclusion
	Body      string // premise
	HeadTotal string // head domain
}

// Counts are the raw metric inputs of one rule evaluation.
type Counts struct {
	Support   int64
	Body      int64
	HeadTotal int64
}

// Coverage returns support/headTotal as a percentage (0 when undefined).
func (c Counts) Coverage() float64 {
	if c.HeadTotal == 0 {
		return 0
	}
	return 100 * float64(c.Support) / float64(c.HeadTotal)
}

// Confidence returns support/body as a percentage (0 when undefined).
func (c Counts) Confidence() float64 {
	if c.Body == 0 {
		return 0
	}
	return 100 * float64(c.Support) / float64(c.Body)
}

// Rule is one consistency rule.
type Rule interface {
	// Kind returns the rule family.
	Kind() Kind
	// Complexity classifies the rule per §4.5's simple/complex contrast.
	Complexity() Complexity
	// NL returns the natural-language statement of the rule.
	NL() string
	// Formal returns a GFD/GED-style rendering of the rule.
	Formal() string
	// Queries returns the reference Cypher for the metric counts.
	Queries() QuerySet
	// CountsNative evaluates the rule by direct graph traversal.
	CountsNative(g *graph.Graph) (Counts, error)
	// DedupKey is a canonical identity used to merge duplicate rules mined
	// from different windows.
	DedupKey() string
}

// ---------- RequiredProperty ----------

// RequiredProperty requires every element with a label to carry a property:
// "Each Match node should have a date property."
type RequiredProperty struct {
	Label  string
	Key    string
	OnEdge bool
}

// Kind implements Rule.
func (r *RequiredProperty) Kind() Kind { return KindRequiredProperty }

// Complexity implements Rule.
func (r *RequiredProperty) Complexity() Complexity { return Simple }

// NL implements Rule.
func (r *RequiredProperty) NL() string {
	noun := "node"
	if r.OnEdge {
		noun = "relationship"
	}
	return fmt.Sprintf("Each %s %s should have a %s property.", r.Label, noun, r.Key)
}

// Formal implements Rule.
func (r *RequiredProperty) Formal() string {
	return fmt.Sprintf("∀x: %s(x) → x.%s ≠ ⊥", r.Label, r.Key)
}

// DedupKey implements Rule.
func (r *RequiredProperty) DedupKey() string {
	return fmt.Sprintf("required:%v:%s.%s", r.OnEdge, r.Label, r.Key)
}

// Queries implements Rule.
func (r *RequiredProperty) Queries() QuerySet {
	if r.OnEdge {
		return QuerySet{
			Support:   fmt.Sprintf("MATCH ()-[r:%s]->() WHERE r.%s IS NOT NULL RETURN count(*) AS n", r.Label, r.Key),
			Body:      fmt.Sprintf("MATCH ()-[r:%s]->() RETURN count(*) AS n", r.Label),
			HeadTotal: fmt.Sprintf("MATCH ()-[r:%s]->() RETURN count(*) AS n", r.Label),
		}
	}
	return QuerySet{
		Support:   fmt.Sprintf("MATCH (x:%s) WHERE x.%s IS NOT NULL RETURN count(*) AS n", r.Label, r.Key),
		Body:      fmt.Sprintf("MATCH (x:%s) RETURN count(*) AS n", r.Label),
		HeadTotal: fmt.Sprintf("MATCH (x:%s) RETURN count(*) AS n", r.Label),
	}
}

// CountsNative implements Rule.
func (r *RequiredProperty) CountsNative(g *graph.Graph) (Counts, error) {
	var c Counts
	if r.OnEdge {
		for _, id := range g.EdgesWithType(r.Label) {
			c.Body++
			if !g.Edge(id).Prop(r.Key).IsNull() {
				c.Support++
			}
		}
	} else {
		for _, id := range g.NodesWithLabel(r.Label) {
			c.Body++
			if !g.Node(id).Prop(r.Key).IsNull() {
				c.Support++
			}
		}
	}
	c.HeadTotal = c.Body
	return c, nil
}

// ---------- UniqueProperty ----------

// UniqueProperty requires a property to be unique among the nodes of a
// label: "Each Tweet node should have a unique id property."
type UniqueProperty struct {
	Label string
	Key   string
}

// Kind implements Rule.
func (r *UniqueProperty) Kind() Kind { return KindUniqueProperty }

// Complexity implements Rule.
func (r *UniqueProperty) Complexity() Complexity { return Simple }

// NL implements Rule.
func (r *UniqueProperty) NL() string {
	return fmt.Sprintf("Each %s node should have a unique %s property.", r.Label, r.Key)
}

// Formal implements Rule.
func (r *UniqueProperty) Formal() string {
	return fmt.Sprintf("∀x,y: %s(x) ∧ %s(y) ∧ x.%s = y.%s → x = y", r.Label, r.Label, r.Key, r.Key)
}

// DedupKey implements Rule.
func (r *UniqueProperty) DedupKey() string {
	return fmt.Sprintf("unique:%s.%s", r.Label, r.Key)
}

// Queries implements Rule.
func (r *UniqueProperty) Queries() QuerySet {
	return QuerySet{
		Support: fmt.Sprintf(
			"MATCH (x:%s) WHERE x.%s IS NOT NULL WITH x.%s AS v, count(*) AS c WHERE c = 1 RETURN count(*) AS n",
			r.Label, r.Key, r.Key),
		Body:      fmt.Sprintf("MATCH (x:%s) WHERE x.%s IS NOT NULL RETURN count(*) AS n", r.Label, r.Key),
		HeadTotal: fmt.Sprintf("MATCH (x:%s) RETURN count(*) AS n", r.Label),
	}
}

// CountsNative implements Rule.
func (r *UniqueProperty) CountsNative(g *graph.Graph) (Counts, error) {
	var c Counts
	groups := map[string]int64{}
	for _, id := range g.NodesWithLabel(r.Label) {
		c.HeadTotal++
		v := g.Node(id).Prop(r.Key)
		if v.IsNull() {
			continue
		}
		c.Body++
		groups[v.Hashable()]++
	}
	for _, n := range groups {
		if n == 1 {
			c.Support++
		}
	}
	return c, nil
}

// ---------- ValueDomain ----------

// ValueDomain restricts a property to an enumerated set of values:
// "The owned property should only be true or false."
type ValueDomain struct {
	Label   string
	Key     string
	Allowed []graph.Value
}

// Kind implements Rule.
func (r *ValueDomain) Kind() Kind { return KindValueDomain }

// Complexity implements Rule.
func (r *ValueDomain) Complexity() Complexity { return Simple }

// NL implements Rule.
func (r *ValueDomain) NL() string {
	parts := make([]string, len(r.Allowed))
	for i, v := range r.Allowed {
		parts[i] = v.String()
	}
	return fmt.Sprintf("The %s property of %s nodes should only be one of %s.",
		r.Key, r.Label, strings.Join(parts, " or "))
}

// Formal implements Rule.
func (r *ValueDomain) Formal() string {
	return fmt.Sprintf("∀x: %s(x) ∧ x.%s ≠ ⊥ → x.%s ∈ %s", r.Label, r.Key, r.Key, r.allowedList())
}

func (r *ValueDomain) allowedList() string {
	parts := make([]string, len(r.Allowed))
	for i, v := range r.Allowed {
		parts[i] = v.String()
	}
	return "[" + strings.Join(parts, ", ") + "]"
}

// DedupKey implements Rule.
func (r *ValueDomain) DedupKey() string {
	return fmt.Sprintf("domain:%s.%s:%s", r.Label, r.Key, r.allowedList())
}

// Queries implements Rule.
func (r *ValueDomain) Queries() QuerySet {
	list := r.allowedList()
	return QuerySet{
		Support: fmt.Sprintf("MATCH (x:%s) WHERE x.%s IS NOT NULL AND x.%s IN %s RETURN count(*) AS n",
			r.Label, r.Key, r.Key, list),
		Body:      fmt.Sprintf("MATCH (x:%s) WHERE x.%s IS NOT NULL RETURN count(*) AS n", r.Label, r.Key),
		HeadTotal: fmt.Sprintf("MATCH (x:%s) RETURN count(*) AS n", r.Label),
	}
}

// CountsNative implements Rule.
func (r *ValueDomain) CountsNative(g *graph.Graph) (Counts, error) {
	var c Counts
	for _, id := range g.NodesWithLabel(r.Label) {
		c.HeadTotal++
		v := g.Node(id).Prop(r.Key)
		if v.IsNull() {
			continue
		}
		c.Body++
		for _, a := range r.Allowed {
			if v.Equal(a) {
				c.Support++
				break
			}
		}
	}
	return c, nil
}

// ---------- ValueFormat ----------

// ValueFormat requires a string property to match a regular expression:
// "The domain property should be a string value matching domain format."
type ValueFormat struct {
	Label   string
	Key     string
	Pattern string
}

// Kind implements Rule.
func (r *ValueFormat) Kind() Kind { return KindValueFormat }

// Complexity implements Rule.
func (r *ValueFormat) Complexity() Complexity { return Simple }

// NL implements Rule.
func (r *ValueFormat) NL() string {
	return fmt.Sprintf("The %s property of %s nodes should be a string value matching the format %s.",
		r.Key, r.Label, r.Pattern)
}

// Formal implements Rule.
func (r *ValueFormat) Formal() string {
	return fmt.Sprintf("∀x: %s(x) ∧ x.%s ≠ ⊥ → x.%s ≈ /%s/", r.Label, r.Key, r.Key, r.Pattern)
}

// DedupKey implements Rule.
func (r *ValueFormat) DedupKey() string {
	return fmt.Sprintf("format:%s.%s:%s", r.Label, r.Key, r.Pattern)
}

// Queries implements Rule.
func (r *ValueFormat) Queries() QuerySet {
	pat := strings.ReplaceAll(r.Pattern, `\`, `\\`)
	return QuerySet{
		Support: fmt.Sprintf("MATCH (x:%s) WHERE x.%s IS NOT NULL AND x.%s =~ '%s' RETURN count(*) AS n",
			r.Label, r.Key, r.Key, pat),
		Body:      fmt.Sprintf("MATCH (x:%s) WHERE x.%s IS NOT NULL RETURN count(*) AS n", r.Label, r.Key),
		HeadTotal: fmt.Sprintf("MATCH (x:%s) RETURN count(*) AS n", r.Label),
	}
}

// CountsNative implements Rule.
func (r *ValueFormat) CountsNative(g *graph.Graph) (Counts, error) {
	re, err := regexp.Compile("^(?:" + r.Pattern + ")$")
	if err != nil {
		return Counts{}, fmt.Errorf("rules: invalid format pattern %q: %w", r.Pattern, err)
	}
	var c Counts
	for _, id := range g.NodesWithLabel(r.Label) {
		c.HeadTotal++
		v := g.Node(id).Prop(r.Key)
		if v.IsNull() {
			continue
		}
		c.Body++
		if v.Kind() == graph.KindString && re.MatchString(v.Str()) {
			c.Support++
		}
	}
	return c, nil
}

// ---------- PropertyType ----------

// PropertyType requires a property to hold one dynamic type:
// "The followers property of User nodes should be an integer."
type PropertyType struct {
	Label    string
	Key      string
	OnEdge   bool
	PropKind graph.Kind
}

// Kind implements Rule.
func (r *PropertyType) Kind() Kind { return KindPropertyType }

// Complexity implements Rule.
func (r *PropertyType) Complexity() Complexity { return Simple }

// NL implements Rule.
func (r *PropertyType) NL() string {
	noun := "nodes"
	if r.OnEdge {
		noun = "relationships"
	}
	return fmt.Sprintf("The %s property of %s %s should be of type %s.", r.Key, r.Label, noun, r.PropKind)
}

// Formal implements Rule.
func (r *PropertyType) Formal() string {
	return fmt.Sprintf("∀x: %s(x) ∧ x.%s ≠ ⊥ → type(x.%s) = %s", r.Label, r.Key, r.Key, r.PropKind)
}

// DedupKey implements Rule.
func (r *PropertyType) DedupKey() string {
	return fmt.Sprintf("type:%v:%s.%s:%s", r.OnEdge, r.Label, r.Key, r.PropKind)
}

// Queries implements Rule. Cypher has no direct type() test for values in
// our subset, so the reference queries approximate with a kind-specific
// predicate.
func (r *PropertyType) Queries() QuerySet {
	var pred string
	ref := "x." + r.Key
	switch r.PropKind {
	case graph.KindBool:
		pred = ref + " IN [true, false]"
	case graph.KindString:
		pred = ref + " =~ '(?s).*'"
	default:
		// Numeric kinds: a self-comparison only holds for comparable
		// numerics of the value itself; toString round-trip covers int.
		pred = "toString(toInteger(" + ref + ")) = toString(" + ref + ")"
	}
	var body, total string
	if r.OnEdge {
		body = fmt.Sprintf("MATCH ()-[x:%s]->() WHERE x.%s IS NOT NULL RETURN count(*) AS n", r.Label, r.Key)
		total = fmt.Sprintf("MATCH ()-[x:%s]->() RETURN count(*) AS n", r.Label)
		return QuerySet{
			Support: fmt.Sprintf("MATCH ()-[x:%s]->() WHERE x.%s IS NOT NULL AND %s RETURN count(*) AS n",
				r.Label, r.Key, pred),
			Body:      body,
			HeadTotal: total,
		}
	}
	body = fmt.Sprintf("MATCH (x:%s) WHERE x.%s IS NOT NULL RETURN count(*) AS n", r.Label, r.Key)
	total = fmt.Sprintf("MATCH (x:%s) RETURN count(*) AS n", r.Label)
	return QuerySet{
		Support: fmt.Sprintf("MATCH (x:%s) WHERE x.%s IS NOT NULL AND %s RETURN count(*) AS n",
			r.Label, r.Key, pred),
		Body:      body,
		HeadTotal: total,
	}
}

// CountsNative implements Rule.
func (r *PropertyType) CountsNative(g *graph.Graph) (Counts, error) {
	var c Counts
	check := func(p graph.Value) {
		if p.IsNull() {
			return
		}
		c.Body++
		k := p.Kind()
		if k == r.PropKind || (r.PropKind == graph.KindInt && k == graph.KindFloat) {
			c.Support++
		}
	}
	if r.OnEdge {
		for _, id := range g.EdgesWithType(r.Label) {
			c.HeadTotal++
			check(g.Edge(id).Prop(r.Key))
		}
	} else {
		for _, id := range g.NodesWithLabel(r.Label) {
			c.HeadTotal++
			check(g.Node(id).Prop(r.Key))
		}
	}
	return c, nil
}

// SortRules orders rules deterministically by dedup key.
func SortRules(rs []Rule) {
	sort.Slice(rs, func(i, j int) bool { return rs[i].DedupKey() < rs[j].DedupKey() })
}

// Dedupe removes duplicate rules (same DedupKey), preserving first
// occurrences in order.
func Dedupe(rs []Rule) []Rule {
	seen := map[string]bool{}
	out := rs[:0:0]
	for _, r := range rs {
		k := r.DedupKey()
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, r)
	}
	return out
}
