package rules

import (
	"fmt"

	"github.com/graphrules/graphrules/internal/graph"
)

// Violations renders, for each rule kind, a Cypher query returning the
// concrete elements that violate the rule (premise holds, conclusion does
// not). This powers the paper's future-work direction of explaining rules
// to domain experts: a rule's rationale is its evidence, and its value is
// the violations it exposes.
//
// The limit caps returned rows (<=0 means 25).
func Violations(r Rule, limit int) (string, error) {
	if limit <= 0 {
		limit = 25
	}
	switch x := r.(type) {
	case *RequiredProperty:
		if x.OnEdge {
			return fmt.Sprintf(
				"MATCH (a)-[r:%s]->(b) WHERE r.%s IS NULL RETURN id(a) AS from, id(b) AS to LIMIT %d",
				x.Label, x.Key, limit), nil
		}
		return fmt.Sprintf(
			"MATCH (x:%s) WHERE x.%s IS NULL RETURN id(x) AS node LIMIT %d",
			x.Label, x.Key, limit), nil
	case *UniqueProperty:
		return fmt.Sprintf(
			"MATCH (x:%s) WHERE x.%s IS NOT NULL WITH x.%s AS v, count(*) AS c, collect(id(x)) AS nodes WHERE c > 1 RETURN v AS value, nodes LIMIT %d",
			x.Label, x.Key, x.Key, limit), nil
	case *ValueDomain:
		return fmt.Sprintf(
			"MATCH (x:%s) WHERE x.%s IS NOT NULL AND NOT x.%s IN %s RETURN id(x) AS node, x.%s AS value LIMIT %d",
			x.Label, x.Key, x.Key, x.allowedList(), x.Key, limit), nil
	case *ValueFormat:
		pat := escapePattern(x.Pattern)
		return fmt.Sprintf(
			"MATCH (x:%s) WHERE x.%s IS NOT NULL AND NOT x.%s =~ '%s' RETURN id(x) AS node, x.%s AS value LIMIT %d",
			x.Label, x.Key, x.Key, pat, x.Key, limit), nil
	case *PropertyType:
		return propertyTypeViolations(x, limit)
	case *EdgeEndpoints:
		return fmt.Sprintf(
			"MATCH (a)-[r:%s]->(b) WHERE NOT (a:%s AND b:%s) RETURN id(a) AS from, id(b) AS to LIMIT %d",
			x.EdgeType, x.FromLabel, x.ToLabel, limit), nil
	case *MandatoryEdge:
		pat := fmt.Sprintf("(x)-[:%s]->(:%s)", x.EdgeType, x.OtherLabel)
		if x.Incoming {
			pat = fmt.Sprintf("(x)<-[:%s]-(:%s)", x.EdgeType, x.OtherLabel)
		}
		return fmt.Sprintf(
			"MATCH (x:%s) WHERE NOT %s RETURN id(x) AS node LIMIT %d",
			x.Label, pat, limit), nil
	case *NoSelfLoop:
		return fmt.Sprintf(
			"MATCH (a)-[r:%s]->(a) RETURN id(a) AS node LIMIT %d",
			x.EdgeType, limit), nil
	case *TemporalOrder:
		return fmt.Sprintf(
			"MATCH (a:%s)-[r:%s]->(b:%s) WHERE a.%s IS NOT NULL AND b.%s IS NOT NULL AND a.%s < b.%s "+
				"RETURN id(a) AS from, a.%s AS fromTime, id(b) AS to, b.%s AS toTime LIMIT %d",
			x.FromLabel, x.EdgeType, x.ToLabel, x.Key, x.Key, x.Key, x.Key, x.Key, x.Key, limit), nil
	case *UniqueEdgeProp:
		return fmt.Sprintf(
			"MATCH (a:%s)-[r:%s]->(b:%s) WHERE r.%s IS NOT NULL WITH a, b, r.%s AS v, count(*) AS c "+
				"WHERE c > 1 RETURN id(a) AS from, id(b) AS to, v AS value, c AS copies LIMIT %d",
			x.FromLabel, x.EdgeType, x.ToLabel, x.Key, x.Key, limit), nil
	case *PathAssociation:
		return fmt.Sprintf(
			"MATCH (a:%s)-[:%s]->(b:%s)-[:%s]->(c:%s) WHERE NOT (a)-[:%s]->(:%s)-[:%s]->(c) "+
				"RETURN id(a) AS a, id(b) AS b, id(c) AS c LIMIT %d",
			x.ALabel, x.E1, x.BLabel, x.E2, x.CLabel, x.ReqE1, x.ReqLabel, x.ReqE2, limit), nil
	default:
		return "", fmt.Errorf("rules: no violation query for %T", r)
	}
}

func propertyTypeViolations(x *PropertyType, limit int) (string, error) {
	var pred string
	ref := "x." + x.Key
	switch x.PropKind {
	case graph.KindBool:
		pred = "NOT " + ref + " IN [true, false]"
	case graph.KindString:
		pred = "NOT " + ref + " =~ '(?s).*'"
	default:
		pred = "NOT toString(toInteger(" + ref + ")) = toString(" + ref + ")"
	}
	if x.OnEdge {
		return fmt.Sprintf(
			"MATCH (a)-[x:%s]->(b) WHERE x.%s IS NOT NULL AND %s RETURN id(a) AS from, id(b) AS to LIMIT %d",
			x.Label, x.Key, pred, limit), nil
	}
	return fmt.Sprintf(
		"MATCH (x:%s) WHERE x.%s IS NOT NULL AND %s RETURN id(x) AS node, x.%s AS value LIMIT %d",
		x.Label, x.Key, pred, x.Key, limit), nil
}

func escapePattern(p string) string {
	out := make([]byte, 0, len(p))
	for i := 0; i < len(p); i++ {
		switch p[i] {
		case '\\':
			out = append(out, '\\', '\\')
		case '\'':
			out = append(out, '\\', '\'')
		default:
			out = append(out, p[i])
		}
	}
	return string(out)
}

// Explain renders a domain-expert-facing rationale for a rule given its
// evaluated counts: what the rule asserts formally, how much of the graph
// it speaks about, and how reliable it is.
func Explain(r Rule, c Counts) string {
	verdict := "is always satisfied"
	violations := c.Body - c.Support
	if violations > 0 {
		verdict = fmt.Sprintf("is violated by %d element(s)", violations)
	}
	return fmt.Sprintf(
		"%s Formally: %s. The premise applies to %d element(s) covering %.1f%% of the %d facts in its scope; the rule %s (confidence %.1f%%).",
		r.NL(), r.Formal(), c.Body, c.Coverage(), c.HeadTotal, verdict, c.Confidence())
}
