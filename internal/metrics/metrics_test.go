package metrics

import (
	"context"
	"errors"
	"strings"
	"testing"

	"github.com/graphrules/graphrules/internal/datasets"
	"github.com/graphrules/graphrules/internal/graph"
	"github.com/graphrules/graphrules/internal/rules"
)

func smallGraph() *graph.Graph {
	g := graph.New("m")
	for i := 0; i < 4; i++ {
		props := graph.Props{"id": graph.NewInt(int64(i)), "s": graph.NewString("x")}
		if i == 3 {
			props = graph.Props{} // one node missing id
		}
		g.AddNode([]string{"T"}, props)
	}
	return g
}

func TestEvaluateRule(t *testing.T) {
	g := smallGraph()
	s, err := EvaluateRule(g, &rules.RequiredProperty{Label: "T", Key: "id"})
	if err != nil {
		t.Fatal(err)
	}
	if s.Counts.Support != 3 || s.Counts.Body != 4 {
		t.Errorf("counts = %+v", s.Counts)
	}
	if s.Coverage != 75 || s.Confidence != 75 {
		t.Errorf("cov=%f conf=%f", s.Coverage, s.Confidence)
	}
}

func TestEvaluateQueriesErrors(t *testing.T) {
	g := smallGraph()
	_, err := EvaluateQueries(g, rules.QuerySet{
		Support:   "THIS IS NOT CYPHER",
		Body:      "MATCH (x:T) RETURN count(*) AS n",
		HeadTotal: "MATCH (x:T) RETURN count(*) AS n",
	})
	if err == nil || !strings.Contains(err.Error(), "support query failed") {
		t.Errorf("err = %v", err)
	}
}

func TestEvaluateRules(t *testing.T) {
	g := smallGraph()
	rs := []rules.Rule{
		&rules.RequiredProperty{Label: "T", Key: "id"},
		&rules.ValueFormat{Label: "T", Key: "s", Pattern: "["}, // invalid regex -> query fails
	}
	scores, failed := EvaluateRules(g, rs)
	if len(scores) != 1 || len(failed) != 1 {
		t.Errorf("scores=%d failed=%d", len(scores), len(failed))
	}
}

func TestCrossCheckOnDatasets(t *testing.T) {
	g := datasets.WWC2019(datasets.Options{Seed: 11, ViolationRate: 0.05})
	checks := []rules.Rule{
		&rules.RequiredProperty{Label: "Match", Key: "date"},
		&rules.UniqueProperty{Label: "Person", Key: "id"},
		&rules.EdgeEndpoints{EdgeType: "IN_TOURNAMENT", FromLabel: "Match", ToLabel: "Tournament"},
		&rules.UniqueEdgeProp{EdgeType: "SCORED_GOAL", FromLabel: "Person", ToLabel: "Match", Key: "minute"},
		&rules.MandatoryEdge{Label: "Squad", EdgeType: "FOR", OtherLabel: "Tournament"},
		&rules.PathAssociation{ALabel: "Person", E1: "PLAYED_IN", BLabel: "Match", E2: "IN_TOURNAMENT", CLabel: "Tournament",
			ReqE1: "IN_SQUAD", ReqLabel: "Squad", ReqE2: "FOR"},
	}
	for _, r := range checks {
		if err := CrossCheck(g, r); err != nil {
			t.Error(err)
		}
	}
}

func TestCrossCheckCybersecurity(t *testing.T) {
	g := datasets.Cybersecurity(datasets.Options{Seed: 5, ViolationRate: 0.05})
	checks := []rules.Rule{
		&rules.ValueDomain{Label: "User", Key: "owned", Allowed: []graph.Value{graph.NewBool(true), graph.NewBool(false)}},
		&rules.ValueFormat{Label: "User", Key: "domain", Pattern: `([a-zA-Z0-9-]+\.)+[a-zA-Z]{2,}`},
		&rules.NoSelfLoop{EdgeType: "FORCE_CHANGE_PASSWORD"},
		&rules.MandatoryEdge{Label: "User", EdgeType: "MEMBER_OF", OtherLabel: "Group"},
		&rules.PropertyType{Label: "User", Key: "owned", PropKind: graph.KindBool},
	}
	for _, r := range checks {
		if err := CrossCheck(g, r); err != nil {
			t.Error(err)
		}
	}
}

func TestAggregated(t *testing.T) {
	scores := []Score{
		{Counts: rules.Counts{Support: 10}, Coverage: 50, Confidence: 100},
		{Counts: rules.Counts{Support: 20}, Coverage: 100, Confidence: 50},
	}
	a := Aggregated(scores)
	if a.Rules != 2 || a.MeanSupport != 15 || a.MeanCoverage != 75 || a.MeanConfidence != 75 {
		t.Errorf("aggregate = %+v", a)
	}
	empty := Aggregated(nil)
	if empty.Rules != 0 || empty.MeanSupport != 0 {
		t.Error("empty aggregate wrong")
	}
}

func TestViolationsLowerConfidence(t *testing.T) {
	clean := datasets.Cybersecurity(datasets.Options{Seed: 9, ViolationRate: 0})
	dirty := datasets.Cybersecurity(datasets.Options{Seed: 9, ViolationRate: 0.1})
	r := &rules.ValueDomain{Label: "User", Key: "owned", Allowed: []graph.Value{graph.NewBool(true), graph.NewBool(false)}}
	sc, err := EvaluateRule(clean, r)
	if err != nil {
		t.Fatal(err)
	}
	sd, err := EvaluateRule(dirty, r)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Confidence != 100 {
		t.Errorf("clean confidence = %f", sc.Confidence)
	}
	if sd.Confidence >= sc.Confidence {
		t.Errorf("violations should lower confidence: clean=%f dirty=%f", sc.Confidence, sd.Confidence)
	}
}

func TestEvaluateQuerySetsCtxCancelled(t *testing.T) {
	g := smallGraph()
	qs := (&rules.RequiredProperty{Label: "T", Key: "id"}).Queries()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	counts, errs := EvaluateQuerySetsCtx(ctx, g, []rules.QuerySet{qs, qs}, EvalOptions{Workers: 1})
	if len(counts) != 2 || len(errs) != 2 {
		t.Fatalf("len(counts)=%d len(errs)=%d", len(counts), len(errs))
	}
	for i, err := range errs {
		if !errors.Is(err, context.Canceled) {
			t.Errorf("errs[%d] = %v, want context.Canceled", i, err)
		}
	}
}

func TestEvaluateQueriesCtxBackground(t *testing.T) {
	g := smallGraph()
	qs := (&rules.RequiredProperty{Label: "T", Key: "id"}).Queries()
	c, err := NewScorer(g).EvaluateQueriesCtx(context.Background(), qs)
	if err != nil {
		t.Fatal(err)
	}
	if c.Support != 3 || c.Body != 4 {
		t.Errorf("counts = %+v", c)
	}
}
