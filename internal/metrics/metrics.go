// Package metrics scores consistency rules against a property graph with
// the paper's adapted AMIE measures (§4.2): support, coverage and
// confidence. The metrics for a rule are computed by executing its Cypher
// queries on the embedded engine, exactly as the paper executes generated
// queries on Neo4j; a native evaluation path cross-checks the engine.
//
// Table 2–4 report one aggregate row per configuration; following the
// paper's presentation, the aggregate Supp column is the mean support per
// rule and Cov%/Conf% are means across the scored rules.
package metrics

import (
	"fmt"

	"github.com/graphrules/graphrules/internal/cypher"
	"github.com/graphrules/graphrules/internal/graph"
	"github.com/graphrules/graphrules/internal/rules"
)

// Score is one rule's evaluation result.
type Score struct {
	Rule       rules.Rule
	Counts     rules.Counts
	Coverage   float64 // percent
	Confidence float64 // percent
}

// EvaluateQueries runs a rule's three metric queries on the graph. Every
// query must return one row whose column `n` (or first column) is the
// count.
func EvaluateQueries(g *graph.Graph, qs rules.QuerySet) (rules.Counts, error) {
	ex := cypher.NewExecutor(g)
	runCount := func(src, what string) (int64, error) {
		res, err := ex.Run(src, nil)
		if err != nil {
			return 0, fmt.Errorf("metrics: %s query failed: %w", what, err)
		}
		if res.Len() == 0 {
			return 0, nil
		}
		if col := res.Column("n"); col >= 0 {
			return res.Int(0, "n"), nil
		}
		return res.FirstInt(""), nil
	}
	var c rules.Counts
	var err error
	if c.Support, err = runCount(qs.Support, "support"); err != nil {
		return c, err
	}
	if c.Body, err = runCount(qs.Body, "body"); err != nil {
		return c, err
	}
	if c.HeadTotal, err = runCount(qs.HeadTotal, "head-total"); err != nil {
		return c, err
	}
	return c, nil
}

// EvaluateRule scores a rule using its reference Cypher.
func EvaluateRule(g *graph.Graph, r rules.Rule) (Score, error) {
	c, err := EvaluateQueries(g, r.Queries())
	if err != nil {
		return Score{}, fmt.Errorf("metrics: rule %s: %w", r.DedupKey(), err)
	}
	return Score{Rule: r, Counts: c, Coverage: c.Coverage(), Confidence: c.Confidence()}, nil
}

// EvaluateRules scores a rule list, skipping rules whose queries fail and
// returning them in failed.
func EvaluateRules(g *graph.Graph, rs []rules.Rule) (scores []Score, failed []error) {
	for _, r := range rs {
		s, err := EvaluateRule(g, r)
		if err != nil {
			failed = append(failed, err)
			continue
		}
		scores = append(scores, s)
	}
	return scores, failed
}

// CrossCheck verifies that the Cypher evaluation of a rule agrees with its
// native graph-walk evaluation; it returns an error describing the first
// mismatch. This is the metric layer's correctness invariant.
func CrossCheck(g *graph.Graph, r rules.Rule) error {
	viaCypher, err := EvaluateQueries(g, r.Queries())
	if err != nil {
		return err
	}
	native, err := r.CountsNative(g)
	if err != nil {
		return fmt.Errorf("metrics: native evaluation of %s: %w", r.DedupKey(), err)
	}
	if viaCypher != native {
		return fmt.Errorf("metrics: rule %s: cypher counts %+v != native counts %+v",
			r.DedupKey(), viaCypher, native)
	}
	return nil
}

// Aggregate is one table row: means across a configuration's scored rules.
type Aggregate struct {
	Rules          int
	MeanSupport    float64
	MeanCoverage   float64 // percent
	MeanConfidence float64 // percent
}

// Aggregated folds per-rule scores into the table-row aggregate.
func Aggregated(scores []Score) Aggregate {
	a := Aggregate{Rules: len(scores)}
	if len(scores) == 0 {
		return a
	}
	for _, s := range scores {
		a.MeanSupport += float64(s.Counts.Support)
		a.MeanCoverage += s.Coverage
		a.MeanConfidence += s.Confidence
	}
	n := float64(len(scores))
	a.MeanSupport /= n
	a.MeanCoverage /= n
	a.MeanConfidence /= n
	return a
}
