// Package metrics scores consistency rules against a property graph with
// the paper's adapted AMIE measures (§4.2): support, coverage and
// confidence. The metrics for a rule are computed by executing its Cypher
// queries on the embedded engine, exactly as the paper executes generated
// queries on Neo4j; a native evaluation path cross-checks the engine.
//
// Table 2–4 report one aggregate row per configuration; following the
// paper's presentation, the aggregate Supp column is the mean support per
// rule and Cov%/Conf% are means across the scored rules.
package metrics

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"github.com/graphrules/graphrules/internal/cypher"
	"github.com/graphrules/graphrules/internal/graph"
	"github.com/graphrules/graphrules/internal/rules"
)

// Score is one rule's evaluation result.
type Score struct {
	Rule       rules.Rule
	Counts     rules.Counts
	Coverage   float64 // percent
	Confidence float64 // percent
}

// Scorer evaluates rule metric queries against one graph through a shared
// executor, so the plan cache and property indexes warm up across rules.
// It is safe for concurrent use.
type Scorer struct {
	g  *graph.Graph
	ex *cypher.Executor
}

// NewScorer returns a scorer bound to the graph. Executor options (shard
// workers, pushdown toggles, plan-cache cap, ...) pass through verbatim to
// the shared executor:
//
//	sc := metrics.NewScorer(g, cypher.WithShardWorkers(8))
func NewScorer(g *graph.Graph, opts ...cypher.Option) *Scorer {
	return &Scorer{g: g, ex: cypher.NewExecutor(g, opts...)}
}

// Executor exposes the scorer's shared executor (for cache stats).
func (s *Scorer) Executor() *cypher.Executor { return s.ex }

// SetShardWorkers configures sharded MATCH execution on the scorer's shared
// executor: eligible anchor scans inside each metric query are partitioned
// across n workers (0 = serial). This parallelism is within one query and
// composes with the rule-level worker pool of EvaluateRulesParallel.
//
// Deprecated: pass cypher.WithShardWorkers(n) to NewScorer instead.
func (s *Scorer) SetShardWorkers(n int) { s.ex.SetShardWorkers(n) }

// EvaluateQueries runs a rule's three metric queries. Every query must
// return a row whose column `n` (or sole column) holds a numeric count —
// a missing, NULL, or non-numeric count is an error, never a silent zero.
func (s *Scorer) EvaluateQueries(qs rules.QuerySet) (rules.Counts, error) {
	return s.EvaluateQueriesCtx(context.Background(), qs)
}

// EvaluateQueriesCtx is EvaluateQueries with cancellation: a done context
// aborts the current query promptly and surfaces ctx.Err().
func (s *Scorer) EvaluateQueriesCtx(ctx context.Context, qs rules.QuerySet) (rules.Counts, error) {
	runCount := func(src, what string) (int64, error) {
		res, err := s.ex.RunCtx(ctx, src, nil)
		if err != nil {
			return 0, fmt.Errorf("metrics: %s query failed: %w", what, err)
		}
		col := "n"
		if res.Column(col) < 0 && len(res.Columns) == 1 {
			col = res.Columns[0]
		}
		n, err := res.IntErr(0, col)
		if err != nil {
			return 0, fmt.Errorf("metrics: %s query did not produce a count: %w", what, err)
		}
		return n, nil
	}
	var c rules.Counts
	var err error
	if c.Support, err = runCount(qs.Support, "support"); err != nil {
		return c, err
	}
	if c.Body, err = runCount(qs.Body, "body"); err != nil {
		return c, err
	}
	if c.HeadTotal, err = runCount(qs.HeadTotal, "head-total"); err != nil {
		return c, err
	}
	return c, nil
}

// EvaluateRule scores a rule using its reference Cypher. It is a wrapper
// over EvaluateRuleCtx with a background context.
func (s *Scorer) EvaluateRule(r rules.Rule) (Score, error) {
	return s.EvaluateRuleCtx(context.Background(), r)
}

// EvaluateRuleCtx is EvaluateRule with cancellation: a done context aborts
// the in-flight metric query promptly and surfaces ctx.Err().
func (s *Scorer) EvaluateRuleCtx(ctx context.Context, r rules.Rule) (Score, error) {
	c, err := s.EvaluateQueriesCtx(ctx, r.Queries())
	if err != nil {
		return Score{}, fmt.Errorf("metrics: rule %s: %w", r.DedupKey(), err)
	}
	return Score{Rule: r, Counts: c, Coverage: c.Coverage(), Confidence: c.Confidence()}, nil
}

// EvaluateQueries runs a rule's three metric queries on the graph with a
// one-shot scorer; see Scorer.EvaluateQueries for the count contract.
func EvaluateQueries(g *graph.Graph, qs rules.QuerySet) (rules.Counts, error) {
	return NewScorer(g).EvaluateQueries(qs)
}

// EvaluateRule scores a rule using its reference Cypher.
func EvaluateRule(g *graph.Graph, r rules.Rule) (Score, error) {
	return NewScorer(g).EvaluateRule(r)
}

// EvaluateRules scores a rule list serially, skipping rules whose queries
// fail and returning them in failed.
func EvaluateRules(g *graph.Graph, rs []rules.Rule) (scores []Score, failed []error) {
	return EvaluateRulesParallel(g, rs, 1)
}

// EvaluateRulesParallel scores a rule list with a worker pool; it is a
// wrapper over EvaluateRulesParallelCtx with a background context.
func EvaluateRulesParallel(g *graph.Graph, rs []rules.Rule, workers int) (scores []Score, failed []error) {
	return EvaluateRulesParallelCtx(context.Background(), g, rs, workers)
}

// EvaluateRulesParallelCtx scores a rule list with a worker pool sharing one
// executor (and therefore one plan cache). Results are returned in input
// order regardless of worker count or scheduling, and each rule's failure
// is isolated: it lands in failed without affecting the others' scores.
// workers <= 0 selects GOMAXPROCS. Once ctx is done, in-flight queries
// abort and every not-yet-started rule fails with ctx.Err().
func EvaluateRulesParallelCtx(ctx context.Context, g *graph.Graph, rs []rules.Rule, workers int) (scores []Score, failed []error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(rs) {
		workers = len(rs)
	}
	type slot struct {
		score Score
		err   error
	}
	out := make([]slot, len(rs))
	sc := NewScorer(g)
	forEachIndex(len(rs), workers, func(i int) {
		defer func() {
			if p := recover(); p != nil {
				out[i].err = fmt.Errorf("metrics: rule %s: panic during evaluation: %v", rs[i].DedupKey(), p)
			}
		}()
		if err := ctx.Err(); err != nil {
			out[i].err = err
			return
		}
		out[i].score, out[i].err = sc.EvaluateRuleCtx(ctx, rs[i])
	})
	for _, s := range out {
		if s.err != nil {
			failed = append(failed, s.err)
			continue
		}
		scores = append(scores, s.score)
	}
	return scores, failed
}

// EvalOptions configures batch query-set evaluation.
type EvalOptions struct {
	// Workers is the rule-level worker pool size; <= 0 selects GOMAXPROCS.
	Workers int
	// ShardWorkers configures per-query sharded MATCH execution on the
	// shared executor (anchor scans partitioned across this many workers);
	// <= 0 runs each query serially. Both levels of parallelism are
	// deterministic: output order and counts never depend on either value.
	ShardWorkers int
	// MorselSize sets the anchor-candidate morsel size for sharded scans;
	// <= 0 keeps the executor default. Like ShardWorkers it is a pure
	// scheduling knob and never changes results.
	MorselSize int
	// ExecOptions are applied to the shared executor after ShardWorkers and
	// MorselSize, so any cypher.Option (pushdown toggles, plan-cache cap, or
	// an overriding WithShardWorkers) is reachable from batch evaluation.
	ExecOptions []cypher.Option
	// MaxRows / MemoryBudget / QueryDeadline put per-query resource
	// budgets on the shared executor; a rule whose query exceeds one gets
	// a typed *cypher.ResourceExhaustedError in its errs slot while the
	// other rules keep scoring. Zero disables each; under-budget queries
	// score identically to ungoverned.
	MaxRows       int
	MemoryBudget  int64
	QueryDeadline time.Duration
	// Admission gates every scoring query through an admission controller
	// (nil = ungated).
	Admission cypher.Admission
}

// execOptions renders the EvalOptions knobs as executor options, budgets
// included, with opt.ExecOptions last so callers can override anything.
func (opt EvalOptions) execOptions() []cypher.Option {
	return append([]cypher.Option{
		cypher.WithShardWorkers(opt.ShardWorkers),
		cypher.WithMorselSize(opt.MorselSize),
		cypher.WithMaxRows(opt.MaxRows),
		cypher.WithMemoryBudget(opt.MemoryBudget),
		cypher.WithQueryDeadline(opt.QueryDeadline),
		cypher.WithAdmission(opt.Admission),
	}, opt.ExecOptions...)
}

// EvaluateQuerySetsParallel evaluates many query sets against one graph
// with a worker pool sharing one executor (and plan cache). The returned
// slices are parallel to qss and in input order regardless of worker
// count; exactly one of counts[i] / errs[i] is meaningful per entry.
// workers <= 0 selects GOMAXPROCS.
func EvaluateQuerySetsParallel(g *graph.Graph, qss []rules.QuerySet, workers int) (counts []rules.Counts, errs []error) {
	return EvaluateQuerySets(g, qss, EvalOptions{Workers: workers})
}

// EvaluateQuerySets evaluates many query sets with explicit options; see
// EvaluateQuerySetsParallel for the contract.
func EvaluateQuerySets(g *graph.Graph, qss []rules.QuerySet, opt EvalOptions) (counts []rules.Counts, errs []error) {
	return EvaluateQuerySetsCtx(context.Background(), g, qss, opt)
}

// EvaluateQuerySetsCtx is EvaluateQuerySets with cancellation. Once ctx is
// done, in-flight queries abort and every not-yet-started entry gets
// errs[i] = ctx.Err(); counts for entries that completed earlier are kept.
func EvaluateQuerySetsCtx(ctx context.Context, g *graph.Graph, qss []rules.QuerySet, opt EvalOptions) (counts []rules.Counts, errs []error) {
	workers := opt.Workers
	counts = make([]rules.Counts, len(qss))
	errs = make([]error, len(qss))
	sc := NewScorer(g, opt.execOptions()...)
	forEachIndex(len(qss), workers, func(i int) {
		defer func() {
			if p := recover(); p != nil {
				errs[i] = fmt.Errorf("metrics: query set %d: panic during evaluation: %v", i, p)
			}
		}()
		if err := ctx.Err(); err != nil {
			errs[i] = err
			return
		}
		counts[i], errs[i] = sc.EvaluateQueriesCtx(ctx, qss[i])
	})
	return counts, errs
}

// forEachIndex runs fn(0..n-1) on a bounded worker pool; fn must write
// only to its own index's slots. workers <= 0 selects GOMAXPROCS.
func forEachIndex(n, workers int, fn func(i int)) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
}

// CrossCheck verifies that the Cypher evaluation of a rule agrees with its
// native graph-walk evaluation; it is a wrapper over CrossCheckCtx with a
// background context.
func CrossCheck(g *graph.Graph, r rules.Rule) error {
	return CrossCheckCtx(context.Background(), g, r)
}

// CrossCheckCtx is CrossCheck with cancellation: a done context aborts the
// Cypher evaluation promptly. It returns an error describing the first
// mismatch between the Cypher and native counts — the metric layer's
// correctness invariant.
func CrossCheckCtx(ctx context.Context, g *graph.Graph, r rules.Rule) error {
	viaCypher, err := NewScorer(g).EvaluateQueriesCtx(ctx, r.Queries())
	if err != nil {
		return err
	}
	native, err := r.CountsNative(g)
	if err != nil {
		return fmt.Errorf("metrics: native evaluation of %s: %w", r.DedupKey(), err)
	}
	if viaCypher != native {
		return fmt.Errorf("metrics: rule %s: cypher counts %+v != native counts %+v",
			r.DedupKey(), viaCypher, native)
	}
	return nil
}

// Aggregate is one table row: means across a configuration's scored rules.
type Aggregate struct {
	Rules          int
	MeanSupport    float64
	MeanCoverage   float64 // percent
	MeanConfidence float64 // percent
}

// Aggregated folds per-rule scores into the table-row aggregate.
func Aggregated(scores []Score) Aggregate {
	a := Aggregate{Rules: len(scores)}
	if len(scores) == 0 {
		return a
	}
	for _, s := range scores {
		a.MeanSupport += float64(s.Counts.Support)
		a.MeanCoverage += s.Coverage
		a.MeanConfidence += s.Confidence
	}
	n := float64(len(scores))
	a.MeanSupport /= n
	a.MeanCoverage /= n
	a.MeanConfidence /= n
	return a
}
