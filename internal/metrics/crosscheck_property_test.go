package metrics

import (
	"math/rand"
	"testing"

	"github.com/graphrules/graphrules/internal/graph"
	"github.com/graphrules/graphrules/internal/rules"
)

// TestRandomRuleCrossCheckProperty generates random small graphs and random
// rules over their schemas, asserting the dual-path invariant (Cypher
// evaluation == native evaluation) on every combination. This is the
// broadest correctness sweep of the metric layer.
func TestRandomRuleCrossCheckProperty(t *testing.T) {
	labels := []string{"A", "B", "C"}
	keys := []string{"id", "k", "t"}
	edgeTypes := []string{"R", "S"}

	for trial := 0; trial < 40; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		g := graph.New("prop")
		var nodes []graph.ID
		nNodes := 5 + rng.Intn(20)
		for i := 0; i < nNodes; i++ {
			props := graph.Props{}
			for _, k := range keys {
				switch rng.Intn(4) {
				case 0: // absent
				case 1:
					props[k] = graph.NewInt(int64(rng.Intn(5)))
				case 2:
					props[k] = graph.NewString(string(rune('a' + rng.Intn(3))))
				case 3:
					props[k] = graph.NewBool(rng.Intn(2) == 0)
				}
			}
			n := g.AddNode([]string{labels[rng.Intn(len(labels))]}, props)
			nodes = append(nodes, n.ID)
		}
		nEdges := rng.Intn(30)
		for i := 0; i < nEdges; i++ {
			props := graph.Props{}
			if rng.Intn(2) == 0 {
				props["w"] = graph.NewInt(int64(rng.Intn(3)))
			}
			g.MustAddEdge(nodes[rng.Intn(len(nodes))], nodes[rng.Intn(len(nodes))],
				[]string{edgeTypes[rng.Intn(len(edgeTypes))]}, props)
		}

		candidates := []rules.Rule{
			&rules.RequiredProperty{Label: pickS(rng, labels), Key: pickS(rng, keys)},
			&rules.UniqueProperty{Label: pickS(rng, labels), Key: pickS(rng, keys)},
			&rules.ValueDomain{Label: pickS(rng, labels), Key: pickS(rng, keys),
				Allowed: []graph.Value{graph.NewInt(0), graph.NewBool(true), graph.NewString("a")}},
			&rules.PropertyType{Label: pickS(rng, labels), Key: pickS(rng, keys), PropKind: graph.KindInt},
			&rules.EdgeEndpoints{EdgeType: pickS(rng, edgeTypes), FromLabel: pickS(rng, labels), ToLabel: pickS(rng, labels)},
			&rules.MandatoryEdge{Label: pickS(rng, labels), EdgeType: pickS(rng, edgeTypes),
				Incoming: rng.Intn(2) == 0, OtherLabel: pickS(rng, labels)},
			&rules.NoSelfLoop{EdgeType: pickS(rng, edgeTypes)},
			&rules.TemporalOrder{EdgeType: pickS(rng, edgeTypes), FromLabel: pickS(rng, labels),
				ToLabel: pickS(rng, labels), Key: pickS(rng, keys)},
			&rules.UniqueEdgeProp{EdgeType: pickS(rng, edgeTypes), FromLabel: pickS(rng, labels),
				ToLabel: pickS(rng, labels), Key: "w"},
			&rules.PathAssociation{ALabel: pickS(rng, labels), E1: "R", BLabel: pickS(rng, labels),
				E2: "S", CLabel: pickS(rng, labels), ReqE1: "S", ReqLabel: pickS(rng, labels), ReqE2: "R"},
		}
		for _, r := range candidates {
			if err := CrossCheck(g, r); err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
		}
	}
}

func pickS(rng *rand.Rand, ss []string) string { return ss[rng.Intn(len(ss))] }
