package metrics

// Incremental metric maintenance (O(delta) re-scoring).
//
// A Maintainer keeps a rule set's support/coverage/confidence current as the
// graph evolves epoch by epoch. Each rule carries a query Footprint — the
// union of its three metric queries' read sets — and each committed epoch
// carries a Delta summarizing which (label, key) / (type, key) pairs it
// touched. Only rules whose footprint intersects the delta are re-scored;
// everything else keeps its score, because the intersection test is a sound
// over-approximation ("may depend" never misses a true dependence).
//
// Re-scoring runs the rule's queries in full against the post-epoch graph —
// the delta bounds *which* rules pay, not how much each one pays. That is
// the right trade for this workload: rule sets are wide (many rules, narrow
// footprints) while epochs are narrow (few labels touched), so the win is
// skipping whole rules, and exact re-execution keeps the differential
// oracle's invariant trivial: maintained scores must equal a full recompute
// after every epoch.

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"github.com/graphrules/graphrules/internal/cypher"
	"github.com/graphrules/graphrules/internal/graph"
	"github.com/graphrules/graphrules/internal/rules"
)

// MaintainerStats counts what the maintainer did so far.
type MaintainerStats struct {
	// Epochs is how many deltas were applied.
	Epochs int
	// Rescored / Skipped count rule evaluations across all applied epochs:
	// a rule whose footprint intersected the delta (re-run) vs one whose
	// score was provably unaffected (kept).
	Rescored int
	Skipped  int
}

// Maintainer incrementally maintains metric scores for a fixed rule set
// over one graph. Construct with NewMaintainer (which performs the initial
// full scoring), then feed every committed epoch's delta to Apply — or call
// Attach to subscribe to the graph's commit stream directly. All methods
// are safe for concurrent use with each other; Apply calls are serialized
// internally and must be fed deltas in commit order.
type Maintainer struct {
	g  *graph.Graph
	sc *Scorer

	mu     sync.Mutex
	rules  []rules.Rule
	fps    []*cypher.Footprint
	scores []Score // parallel to rules; valid where errs[i] == nil
	errs   []error // sticky per-rule evaluation errors
	stats  MaintainerStats
}

// NewMaintainer builds a maintainer with a background context for the
// initial scoring; use NewMaintainerCtx to make it cancelable.
//
//graphrules:ctxshim
func NewMaintainer(g *graph.Graph, rs []rules.Rule, opts ...cypher.Option) *Maintainer {
	return NewMaintainerCtx(context.Background(), g, rs, opts...)
}

// NewMaintainerCtx builds a maintainer for the rule set and performs the
// initial full scoring under ctx. Executor options pass through to the
// shared scorer; WithSnapshotPin(true) is always applied so each query
// reads one frozen epoch even while writers commit concurrently. A rule
// whose metric queries fail (including by ctx cancellation) records a
// sticky per-rule error (visible in Scores) and is retried whenever an
// epoch intersects its footprint; one broken rule never blocks the rest.
func NewMaintainerCtx(ctx context.Context, g *graph.Graph, rs []rules.Rule, opts ...cypher.Option) *Maintainer {
	m := &Maintainer{
		g:      g,
		sc:     NewScorer(g, append(append([]cypher.Option{}, opts...), cypher.WithSnapshotPin(true))...),
		rules:  append([]rules.Rule(nil), rs...),
		fps:    make([]*cypher.Footprint, len(rs)),
		scores: make([]Score, len(rs)),
		errs:   make([]error, len(rs)),
	}
	for i, r := range rs {
		m.fps[i] = ruleFootprint(r)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for i := range m.rules {
		m.rescoreLocked(ctx, i)
	}
	return m
}

// ruleFootprint unions the footprints of a rule's three metric queries. A
// query that fails to parse widens the footprint to everything — the rule
// then re-scores on every epoch, trading waste for soundness (and its
// evaluation error is surfaced by the scorer anyway).
func ruleFootprint(r rules.Rule) *cypher.Footprint {
	qs := r.Queries()
	f := cypher.NewFootprint()
	for _, src := range []string{qs.Support, qs.Body, qs.HeadTotal} {
		qf, err := cypher.FootprintOf(src)
		if err != nil {
			f.Merge(wildFootprint())
			continue
		}
		f.Merge(qf)
	}
	return f
}

func wildFootprint() *cypher.Footprint {
	f := cypher.NewFootprint()
	f.AnyNode = true
	f.AnyEdge = true
	f.AllKeys = true
	return f
}

// rescoreLocked evaluates rule i against the current graph.
func (m *Maintainer) rescoreLocked(ctx context.Context, i int) {
	s, err := m.sc.EvaluateRuleCtx(ctx, m.rules[i])
	if err != nil {
		m.errs[i] = err
		m.scores[i] = Score{Rule: m.rules[i]}
		return
	}
	m.errs[i] = nil
	m.scores[i] = s
}

// Apply folds one committed epoch's delta into the maintained scores,
// re-scoring exactly the rules whose footprint intersects it. Returns the
// number of rules re-scored. Deltas must be applied in commit order; the
// snapshot-pinned scorer reads the graph as of (at least) the delta's
// epoch, so applying promptly after commit keeps scores exact per epoch.
func (m *Maintainer) Apply(d *graph.Delta) int {
	return m.ApplyCtx(context.Background(), d)
}

// ApplyCtx is Apply with cancellation: a done context aborts in-flight
// metric queries; affected rules record the context error and re-score on
// the next intersecting epoch.
func (m *Maintainer) ApplyCtx(ctx context.Context, d *graph.Delta) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.stats.Epochs++
	n := 0
	for i := range m.rules {
		if !m.fps[i].Intersects(d) {
			m.stats.Skipped++
			continue
		}
		m.rescoreLocked(ctx, i)
		m.stats.Rescored++
		n++
	}
	return n
}

// Attach subscribes with a background context; use AttachCtx to bound
// the subscription's re-scoring work.
//
//graphrules:ctxshim
func (m *Maintainer) Attach() (cancel func()) {
	return m.AttachCtx(context.Background())
}

// AttachCtx subscribes the maintainer to the graph's commit stream: every
// committed epoch is applied synchronously from the commit path (the
// OnCommit contract — the callback runs before the next writer can
// commit, so deltas arrive in order and scores never lag the graph).
// ctx bounds the re-scoring queries run from the commit path; once it is
// done, affected rules record its error until a later epoch re-scores
// them. The returned cancel detaches the subscription.
func (m *Maintainer) AttachCtx(ctx context.Context) (cancel func()) {
	return m.g.OnCommit(func(d *graph.Delta) { m.ApplyCtx(ctx, d) })
}

// Scores returns the current per-rule results in rule order. Entries with
// Err != nil carry no valid score (the rule's queries failed on the last
// intersecting epoch).
func (m *Maintainer) Scores() []MaintainedScore {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]MaintainedScore, len(m.rules))
	for i := range m.rules {
		out[i] = MaintainedScore{Score: m.scores[i], Err: m.errs[i]}
	}
	return out
}

// MaintainedScore is a Score plus the rule's sticky evaluation error.
type MaintainedScore struct {
	Score
	Err error
}

// Stats returns a copy of the maintainer's counters.
func (m *Maintainer) Stats() MaintainerStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}

// Footprint returns rule i's extracted footprint (for Explain/debugging).
func (m *Maintainer) Footprint(i int) *cypher.Footprint {
	return m.fps[i]
}

// Rules returns the maintained rule set in order.
func (m *Maintainer) Rules() []rules.Rule {
	return append([]rules.Rule(nil), m.rules...)
}

// Aggregate folds the currently valid scores into the table-row aggregate,
// mirroring Aggregated over a full evaluation.
func (m *Maintainer) Aggregate() Aggregate {
	m.mu.Lock()
	defer m.mu.Unlock()
	ok := make([]Score, 0, len(m.rules))
	for i := range m.rules {
		if m.errs[i] == nil {
			ok = append(ok, m.scores[i])
		}
	}
	return Aggregated(ok)
}

// Diff compares the maintained scores against a fresh full recompute on
// the same graph and returns a description of every mismatch — the
// differential oracle's primitive. A nil slice means the maintained state
// is exact.
func (m *Maintainer) Diff(ctx context.Context) ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	var diffs []string
	for i, r := range m.rules {
		want, err := m.sc.EvaluateQueriesCtx(ctx, r.Queries())
		if err != nil {
			if m.errs[i] == nil {
				diffs = append(diffs, fmt.Sprintf("rule %s: full recompute failed (%v) but maintained score is valid %+v",
					r.DedupKey(), err, m.scores[i].Counts))
			}
			continue
		}
		if m.errs[i] != nil {
			diffs = append(diffs, fmt.Sprintf("rule %s: maintained state errored (%v) but full recompute succeeded %+v",
				r.DedupKey(), m.errs[i], want))
			continue
		}
		if m.scores[i].Counts != want {
			diffs = append(diffs, fmt.Sprintf("rule %s: maintained counts %+v != recomputed %+v (footprint %s)",
				r.DedupKey(), m.scores[i].Counts, want, m.fps[i]))
		}
	}
	sort.Strings(diffs)
	return diffs, ctx.Err()
}
