package metrics

import (
	"context"
	"testing"

	"github.com/graphrules/graphrules/internal/graph"
	"github.com/graphrules/graphrules/internal/rules"
)

func TestMaintainerInitialScores(t *testing.T) {
	g := smallGraph()
	r := &rules.RequiredProperty{Label: "T", Key: "id"}
	m := NewMaintainer(g, []rules.Rule{r})
	want, err := EvaluateRule(g, r)
	if err != nil {
		t.Fatal(err)
	}
	got := m.Scores()
	if len(got) != 1 || got[0].Err != nil {
		t.Fatalf("scores = %+v", got)
	}
	if got[0].Counts != want.Counts || got[0].Coverage != want.Coverage {
		t.Errorf("maintained %+v != full %+v", got[0].Score, want)
	}
	if st := m.Stats(); st.Epochs != 0 || st.Rescored != 0 {
		t.Errorf("initial scoring must not count as an epoch: %+v", st)
	}
}

func TestMaintainerSkipsUnrelatedEpochs(t *testing.T) {
	g := smallGraph()
	r := &rules.RequiredProperty{Label: "T", Key: "id"}
	m := NewMaintainer(g, []rules.Rule{r})
	if fpStr := m.Footprint(0).String(); fpStr == "" {
		t.Fatal("no footprint")
	}

	var lastDelta *graph.Delta
	defer g.OnCommit(func(d *graph.Delta) { lastDelta = d })()

	// Structural change under an unrelated label: skipped.
	g.AddNode([]string{"Unrelated"}, nil)
	if n := m.Apply(lastDelta); n != 0 {
		t.Errorf("unrelated label rescored %d rules", n)
	}
	// Property change on an unread key of the matched label: skipped.
	if err := g.SetNodeProp(g.Nodes()[0], "city", graph.NewString("x")); err != nil {
		t.Fatal(err)
	}
	if n := m.Apply(lastDelta); n != 0 {
		t.Errorf("unread key rescored %d rules", n)
	}
	// Structural change under the matched label: rescored, counts move.
	g.AddNode([]string{"T"}, nil) // missing id -> support stays, body grows
	if n := m.Apply(lastDelta); n != 1 {
		t.Errorf("related epoch rescored %d rules, want 1", n)
	}
	s := m.Scores()[0]
	if s.Err != nil || s.Counts.Support != 3 || s.Counts.Body != 5 {
		t.Errorf("post-epoch score = %+v err=%v", s.Counts, s.Err)
	}
	if st := m.Stats(); st.Epochs != 3 || st.Rescored != 1 || st.Skipped != 2 {
		t.Errorf("stats = %+v", st)
	}
}

func TestMaintainerAttach(t *testing.T) {
	g := smallGraph()
	r := &rules.RequiredProperty{Label: "T", Key: "id"}
	m := NewMaintainer(g, []rules.Rule{r})
	cancel := m.Attach()

	// The commit path drives Apply synchronously: the score is already
	// current when the mutation call returns.
	n := g.AddNode([]string{"T"}, graph.Props{"id": graph.NewInt(99)})
	if got := m.Scores()[0].Counts; got.Support != 4 || got.Body != 5 {
		t.Errorf("attached score lagged: %+v", got)
	}

	cancel()
	g.RemoveNode(n.ID)
	if got := m.Scores()[0].Counts; got.Body != 5 {
		t.Errorf("detached maintainer still updated: %+v", got)
	}
	// Diff now reports the staleness — and Apply of the missed delta is not
	// possible (it was dropped), so a full recompute is the remedy.
	diffs, err := m.Diff(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(diffs) == 0 {
		t.Error("Diff missed the stale score")
	}
}

func TestMaintainerErrorIsolationAndRetry(t *testing.T) {
	g := smallGraph()
	bad := &rules.ValueFormat{Label: "T", Key: "s", Pattern: "["} // invalid regex
	good := &rules.RequiredProperty{Label: "T", Key: "id"}
	m := NewMaintainer(g, []rules.Rule{bad, good})
	defer m.Attach()()

	got := m.Scores()
	if got[0].Err == nil {
		t.Error("invalid-regex rule must carry an error")
	}
	if got[1].Err != nil {
		t.Errorf("good rule poisoned: %v", got[1].Err)
	}
	// An intersecting epoch retries the errored rule (still failing) and
	// re-scores the good one.
	g.AddNode([]string{"T"}, graph.Props{"id": graph.NewInt(7), "s": graph.NewString("y")})
	got = m.Scores()
	if got[0].Err == nil {
		t.Error("retried rule must still error")
	}
	if got[1].Err != nil || got[1].Counts.Body != 5 {
		t.Errorf("good rule after epoch: %+v err=%v", got[1].Counts, got[1].Err)
	}
	// Aggregate folds only the valid scores.
	if a := m.Aggregate(); a.Rules != 1 {
		t.Errorf("aggregate over %d rules, want 1", a.Rules)
	}
}

func TestMaintainerDiffCleanUnderAttach(t *testing.T) {
	g := smallGraph()
	rs := []rules.Rule{
		&rules.RequiredProperty{Label: "T", Key: "id"},
		&rules.UniqueProperty{Label: "T", Key: "id"},
	}
	m := NewMaintainer(g, rs)
	defer m.Attach()()

	g.AddNode([]string{"T"}, graph.Props{"id": graph.NewInt(0)}) // duplicate id
	if err := g.SetNodeProp(g.Nodes()[3], "id", graph.NewInt(30)); err != nil {
		t.Fatal(err)
	}
	b := g.NewBatch()
	b.AddNode([]string{"T"}, graph.Props{"id": graph.NewInt(40)})
	b.AddNode([]string{"Other"}, nil)
	if _, err := b.Commit(); err != nil {
		t.Fatal(err)
	}
	diffs, err := m.Diff(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diffs {
		t.Errorf("diff: %s", d)
	}
}

func TestMaintainerBatchOneEpochOneApply(t *testing.T) {
	g := smallGraph()
	m := NewMaintainer(g, []rules.Rule{&rules.RequiredProperty{Label: "T", Key: "id"}})
	defer m.Attach()()
	b := g.NewBatch()
	for i := 0; i < 10; i++ {
		b.AddNode([]string{"T"}, graph.Props{"id": graph.NewInt(int64(100 + i))})
	}
	if _, err := b.Commit(); err != nil {
		t.Fatal(err)
	}
	st := m.Stats()
	if st.Epochs != 1 || st.Rescored != 1 {
		t.Errorf("batch of 10 ops must be one epoch/rescore: %+v", st)
	}
	if got := m.Scores()[0].Counts; got.Support != 13 || got.Body != 14 {
		t.Errorf("post-batch counts %+v", got)
	}
}
