package metrics

// Differential oracle for incremental metric maintenance: on each of the
// three paper datasets, a seeded randomized mutation stream drives the
// graph through a sequence of epochs while a Maintainer (attached to the
// commit stream) keeps rule scores current. After EVERY epoch the
// maintained scores must equal a full recompute of every rule on the
// post-epoch graph — the delta-scoping optimization must be invisible in
// the results. The stream runs under both the serial and the sharded
// executor configuration, since snapshot-pinned morsel scans are exactly
// where a stale or torn view would surface.
//
// Environment knobs (all optional), mirroring the cypher oracle:
//
//	GRAPHRULES_ORACLE_SEED      mutation-stream seed (default 1)
//	GRAPHRULES_METRICS_EPOCHS   epochs per dataset/config (default 10;
//	                            4 under -short)
//	GRAPHRULES_ORACLE_ARTIFACT  file to append failing reproductions to

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"testing"

	"github.com/graphrules/graphrules/internal/cypher"
	"github.com/graphrules/graphrules/internal/datasets"
	"github.com/graphrules/graphrules/internal/graph"
	"github.com/graphrules/graphrules/internal/rules"
)

func envInt64M(name string, def int64) int64 {
	if s := os.Getenv(name); s != "" {
		if v, err := strconv.ParseInt(s, 10, 64); err == nil {
			return v
		}
	}
	return def
}

// oracleRules is the per-dataset rule set: the same rules the metric
// cross-check suite trusts, so both ends of the differential are anchored.
func oracleRules(dataset string) []rules.Rule {
	switch dataset {
	case "WWC2019":
		return []rules.Rule{
			&rules.RequiredProperty{Label: "Match", Key: "date"},
			&rules.UniqueProperty{Label: "Person", Key: "id"},
			&rules.EdgeEndpoints{EdgeType: "IN_TOURNAMENT", FromLabel: "Match", ToLabel: "Tournament"},
			&rules.UniqueEdgeProp{EdgeType: "SCORED_GOAL", FromLabel: "Person", ToLabel: "Match", Key: "minute"},
			&rules.MandatoryEdge{Label: "Squad", EdgeType: "FOR", OtherLabel: "Tournament"},
			&rules.PathAssociation{ALabel: "Person", E1: "PLAYED_IN", BLabel: "Match", E2: "IN_TOURNAMENT", CLabel: "Tournament",
				ReqE1: "IN_SQUAD", ReqLabel: "Squad", ReqE2: "FOR"},
		}
	case "Cybersecurity":
		return []rules.Rule{
			&rules.ValueDomain{Label: "User", Key: "owned", Allowed: []graph.Value{graph.NewBool(true), graph.NewBool(false)}},
			&rules.ValueFormat{Label: "User", Key: "domain", Pattern: `([a-zA-Z0-9-]+\.)+[a-zA-Z]{2,}`},
			&rules.NoSelfLoop{EdgeType: "FORCE_CHANGE_PASSWORD"},
			&rules.MandatoryEdge{Label: "User", EdgeType: "MEMBER_OF", OtherLabel: "Group"},
			&rules.PropertyType{Label: "User", Key: "owned", PropKind: graph.KindBool},
		}
	case "Twitter":
		return []rules.Rule{
			&rules.RequiredProperty{Label: "Tweet", Key: "text"},
			&rules.UniqueProperty{Label: "Tweet", Key: "id"},
			&rules.NoSelfLoop{EdgeType: "FOLLOWS"},
			&rules.EdgeEndpoints{EdgeType: "POSTS", FromLabel: "User", ToLabel: "Tweet"},
			&rules.MandatoryEdge{Label: "Tweet", EdgeType: "POSTS", OtherLabel: "User", Incoming: true},
		}
	}
	return nil
}

// mutationStream applies one random epoch to g and returns a reproduction
// string for the artifact. Failed individual mutations (e.g. a remove
// racing the random pick) commit no epoch, which is itself a valid case:
// the maintainer must simply see nothing.
type mutationStream struct {
	rng    *rand.Rand
	labels []string
	types  []string
	// keys the datasets' rules actually read, plus a scratch key no rule
	// reads — the latter forces skip-path coverage.
	keys []string
	log  []string
}

func newMutationStream(g *graph.Graph, seed int64) *mutationStream {
	s := &mutationStream{
		rng:  rand.New(rand.NewSource(seed)),
		keys: []string{"id", "date", "minute", "owned", "text", "domain", "zz_scratch"},
	}
	seenL := map[string]bool{}
	for _, id := range g.Nodes() {
		for _, l := range g.Node(id).Labels {
			if !seenL[l] {
				seenL[l] = true
				s.labels = append(s.labels, l)
			}
		}
	}
	seenT := map[string]bool{}
	for _, id := range g.Edges() {
		for _, l := range g.Edge(id).Labels {
			if !seenT[l] {
				seenT[l] = true
				s.types = append(s.types, l)
			}
		}
	}
	return s
}

func (s *mutationStream) randNode(g *graph.Graph) (graph.ID, bool) {
	ids := g.Nodes()
	if len(ids) == 0 {
		return 0, false
	}
	return ids[s.rng.Intn(len(ids))], true
}

func (s *mutationStream) randValue() graph.Value {
	switch s.rng.Intn(4) {
	case 0:
		return graph.NewInt(s.rng.Int63n(1000))
	case 1:
		return graph.NewFloat(float64(s.rng.Intn(100)) / 4)
	case 2:
		return graph.NewBool(s.rng.Intn(2) == 0)
	default:
		return graph.NewString(fmt.Sprintf("v%d", s.rng.Intn(100)))
	}
}

// step applies one epoch-worth of mutation and logs it.
func (s *mutationStream) step(g *graph.Graph, epoch int) {
	op := s.rng.Intn(6)
	switch op {
	case 0: // add node under a random existing label
		l := s.labels[s.rng.Intn(len(s.labels))]
		g.AddNode([]string{l}, graph.Props{"id": graph.NewInt(s.rng.Int63n(1 << 30))})
		s.log = append(s.log, fmt.Sprintf("e%d: add node :%s", epoch, l))
	case 1: // remove a random node (cascades incident edges)
		if id, ok := s.randNode(g); ok {
			g.RemoveNode(id)
			s.log = append(s.log, fmt.Sprintf("e%d: remove node %d", epoch, id))
		}
	case 2: // set a rule-relevant or scratch property
		if id, ok := s.randNode(g); ok {
			k := s.keys[s.rng.Intn(len(s.keys))]
			_ = g.SetNodeProp(id, k, s.randValue())
			s.log = append(s.log, fmt.Sprintf("e%d: set node %d .%s", epoch, id, k))
		}
	case 3: // add an edge of a random existing type
		a, ok1 := s.randNode(g)
		b, ok2 := s.randNode(g)
		if ok1 && ok2 && len(s.types) > 0 {
			tp := s.types[s.rng.Intn(len(s.types))]
			if _, err := g.AddEdge(a, b, []string{tp}, nil); err == nil {
				s.log = append(s.log, fmt.Sprintf("e%d: add edge %d-[:%s]->%d", epoch, a, tp, b))
			}
		}
	case 4: // remove a random edge
		ids := g.Edges()
		if len(ids) > 0 {
			id := ids[s.rng.Intn(len(ids))]
			g.RemoveEdge(id)
			s.log = append(s.log, fmt.Sprintf("e%d: remove edge %d", epoch, id))
		}
	case 5: // batch: several ops in one epoch
		b := g.NewBatch()
		l := s.labels[s.rng.Intn(len(s.labels))]
		n := b.AddNode([]string{l}, graph.Props{"id": graph.NewInt(s.rng.Int63n(1 << 30))})
		b.SetNodeProp(n.ID, "zz_scratch", s.randValue())
		if id, ok := s.randNode(g); ok {
			b.SetNodeProp(id, s.keys[s.rng.Intn(len(s.keys))], s.randValue())
		}
		if _, err := b.Commit(); err != nil {
			s.log = append(s.log, fmt.Sprintf("e%d: batch FAILED: %v", epoch, err))
			return
		}
		s.log = append(s.log, fmt.Sprintf("e%d: batch add :%s + 2 setprops", epoch, l))
	}
}

func writeMetricsOracleArtifact(dataset string, seed int64, cfg string, detail string, log []string) {
	path := os.Getenv("GRAPHRULES_ORACLE_ARTIFACT")
	if path == "" {
		return
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return
	}
	defer f.Close()
	fmt.Fprintf(f, "metrics-oracle dataset=%s seed=%d config=%s\n%s\nstream:\n", dataset, seed, cfg, detail)
	for _, l := range log {
		fmt.Fprintf(f, "  %s\n", l)
	}
	fmt.Fprintln(f)
}

func TestMaintainerDifferentialOracle(t *testing.T) {
	seed := envInt64M("GRAPHRULES_ORACLE_SEED", 1)
	epochs := int(envInt64M("GRAPHRULES_METRICS_EPOCHS", 10))
	if testing.Short() && os.Getenv("GRAPHRULES_METRICS_EPOCHS") == "" {
		epochs = 4
	}
	configs := []struct {
		name string
		opts []cypher.Option
	}{
		{"serial", nil},
		{"sharded", []cypher.Option{cypher.WithShardWorkers(4), cypher.WithMorselSize(32)}},
	}
	for _, name := range datasets.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			gen, err := datasets.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			for _, cfg := range configs {
				cfg := cfg
				t.Run(cfg.name, func(t *testing.T) {
					g := gen(datasets.Options{Seed: 42, ViolationRate: 0.03})
					m := NewMaintainer(g, oracleRules(name), cfg.opts...)
					defer m.Attach()()
					// Seed differs per (dataset, config) so the two configs
					// exercise different streams too.
					s := newMutationStream(g, seed+int64(len(name))+int64(len(cfg.name)))
					for e := 0; e < epochs; e++ {
						s.step(g, e)
						diffs, err := m.Diff(context.Background())
						if err != nil {
							t.Fatal(err)
						}
						if len(diffs) > 0 {
							detail := fmt.Sprintf("after epoch %d: %d mismatches\n%s",
								e, len(diffs), diffs[0])
							writeMetricsOracleArtifact(name, seed, cfg.name, detail, s.log)
							for _, d := range diffs {
								t.Errorf("epoch %d: %s", e, d)
							}
							t.Fatalf("maintained scores diverged (seed=%d, GRAPHRULES_ORACLE_SEED to reproduce)", seed)
						}
					}
					st := m.Stats()
					t.Logf("%s/%s: epochs=%d rescored=%d skipped=%d",
						name, cfg.name, st.Epochs, st.Rescored, st.Skipped)
					if st.Epochs == 0 {
						t.Error("mutation stream committed no epochs")
					}
					if st.Rescored+st.Skipped != st.Epochs*len(oracleRules(name)) {
						t.Errorf("stats don't add up: %+v over %d rules", st, len(oracleRules(name)))
					}
				})
			}
		})
	}
}

// TestMaintainerSkipsAreReal: on a dataset-scale graph, the scratch-key
// epoch (a property no rule reads) must skip every rule — the delta
// scoping has to actually prune, not just stay correct.
func TestMaintainerSkipsAreReal(t *testing.T) {
	g := datasets.Cybersecurity(datasets.Options{Seed: 7, ViolationRate: 0.03})
	m := NewMaintainer(g, oracleRules("Cybersecurity"))
	defer m.Attach()()
	if err := g.SetNodeProp(g.Nodes()[0], "zz_scratch", graph.NewInt(1)); err != nil {
		t.Fatal(err)
	}
	st := m.Stats()
	if st.Epochs != 1 || st.Rescored != 0 || st.Skipped != len(oracleRules("Cybersecurity")) {
		t.Errorf("scratch-key epoch must skip all rules: %+v", st)
	}
}
