package metrics

import (
	"strings"
	"testing"

	"github.com/graphrules/graphrules/internal/datasets"
	"github.com/graphrules/graphrules/internal/rules"
)

// TestMalformedCountErrors is the headline regression for the silent-zero
// bug: a syntactically valid query whose RETURN alias does not match the
// count convention must surface an error instead of scoring support=0.
func TestMalformedCountErrors(t *testing.T) {
	g := smallGraph()
	good := "MATCH (x:T) RETURN count(*) AS n"

	cases := []struct {
		name, support, wantSub string
	}{
		{"mismatched alias among others", "MATCH (x:T) RETURN count(*) AS support, x.id AS n2", `no column "n"`},
		{"null count column", "MATCH (x:T) RETURN x.missing AS n LIMIT 1", "NULL"},
		{"non-numeric count column", "MATCH (x:T) RETURN x.s AS n LIMIT 1", "not a count"},
		{"no rows", "MATCH (x:T) WITH x WHERE false RETURN x.id AS n", "out of range"},
	}
	for _, tc := range cases {
		_, err := EvaluateQueries(g, rules.QuerySet{Support: tc.support, Body: good, HeadTotal: good})
		if err == nil {
			t.Errorf("%s: want error, got none", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantSub) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.wantSub)
		}
	}

	// A single-column count under a different alias still works (the sole
	// column fallback), so benign alias drift is not punished.
	c, err := EvaluateQueries(g, rules.QuerySet{
		Support:   "MATCH (x:T) RETURN count(*) AS total",
		Body:      good,
		HeadTotal: good,
	})
	if err != nil || c.Support != 4 {
		t.Errorf("sole-column fallback: counts=%+v err=%v", c, err)
	}
}

// TestEvaluateRulesParallelDeterministic checks that the parallel scorer
// returns scores in input order with per-rule error isolation, matching the
// serial path bit-for-bit.
func TestEvaluateRulesParallelDeterministic(t *testing.T) {
	g := datasets.WWC2019(datasets.Options{Seed: 11, ViolationRate: 0.05})
	rs := []rules.Rule{
		&rules.RequiredProperty{Label: "Match", Key: "date"},
		&rules.UniqueProperty{Label: "Person", Key: "id"},
		&rules.ValueFormat{Label: "Person", Key: "name", Pattern: "["}, // broken: invalid regex
		&rules.EdgeEndpoints{EdgeType: "IN_TOURNAMENT", FromLabel: "Match", ToLabel: "Tournament"},
		&rules.MandatoryEdge{Label: "Squad", EdgeType: "FOR", OtherLabel: "Tournament"},
	}
	serialScores, serialFailed := EvaluateRules(g, rs)
	if len(serialFailed) != 1 {
		t.Fatalf("expected exactly one failure, got %v", serialFailed)
	}
	for _, workers := range []int{0, 2, 4, 8} {
		scores, failed := EvaluateRulesParallel(g, rs, workers)
		if len(scores) != len(serialScores) || len(failed) != len(serialFailed) {
			t.Fatalf("workers=%d: scores=%d failed=%d, want %d/%d",
				workers, len(scores), len(failed), len(serialScores), len(serialFailed))
		}
		for i := range scores {
			if scores[i].Rule.DedupKey() != serialScores[i].Rule.DedupKey() {
				t.Errorf("workers=%d: order diverged at %d: %s vs %s",
					workers, i, scores[i].Rule.DedupKey(), serialScores[i].Rule.DedupKey())
			}
			if scores[i].Counts != serialScores[i].Counts {
				t.Errorf("workers=%d: counts diverged for %s: %+v vs %+v",
					workers, scores[i].Rule.DedupKey(), scores[i].Counts, serialScores[i].Counts)
			}
		}
	}
}

// TestScorerSharesPlanCache verifies rules scored through one Scorer reuse
// parsed plans across repeated query texts.
func TestScorerSharesPlanCache(t *testing.T) {
	g := smallGraph()
	sc := NewScorer(g)
	qs := (&rules.RequiredProperty{Label: "T", Key: "id"}).Queries()
	if _, err := sc.EvaluateQueries(qs); err != nil {
		t.Fatal(err)
	}
	if _, err := sc.EvaluateQueries(qs); err != nil {
		t.Fatal(err)
	}
	st := sc.Executor().PlanCacheStats()
	if st.Hits == 0 {
		t.Errorf("expected plan cache hits on repeat scoring, stats=%+v", st)
	}
}
