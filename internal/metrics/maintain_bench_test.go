package metrics

// Delta re-scoring benchmarks (results recorded in BENCH_mvcc.json).
//
// BenchmarkDeltaRescore compares what one committed epoch costs to fold
// into the rule scores: "delta" applies the epoch through the Maintainer
// (only footprint-intersecting rules re-run), "full" recomputes every
// rule — the pre-maintenance behaviour. Two epoch shapes bound the range:
// an unrelated-key property write (the delta skips everything) and a
// structural User change (the delta re-runs the User-reading rules, which
// on this rule set is most of them).

import (
	"testing"

	"github.com/graphrules/graphrules/internal/datasets"
	"github.com/graphrules/graphrules/internal/graph"
)

func BenchmarkDeltaRescore(b *testing.B) {
	shapes := []struct {
		name   string
		mutate func(g *graph.Graph, i int)
	}{
		{"unrelated-key", func(g *graph.Graph, i int) {
			_ = g.SetNodeProp(g.Nodes()[i%100], "zz_scratch", graph.NewInt(int64(i)))
		}},
		{"structural-user", func(g *graph.Graph, i int) {
			// One epoch per iteration: alternate add/remove so the graph
			// stays near its base size.
			if i%2 == 0 {
				g.AddNode([]string{"User"}, graph.Props{"owned": graph.NewBool(false)})
			} else {
				ids := g.NodesWithLabel("User")
				g.RemoveNode(ids[len(ids)-1])
			}
		}},
	}
	for _, shape := range shapes {
		b.Run(shape.name+"/delta", func(b *testing.B) {
			g := datasets.Cybersecurity(datasets.Options{Seed: 7, ViolationRate: 0.03})
			rs := oracleRules("Cybersecurity")
			m := NewMaintainer(g, rs)
			defer m.Attach()() // every epoch applied on the commit path
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				shape.mutate(g, i)
			}
			b.StopTimer()
			st := m.Stats()
			b.ReportMetric(float64(st.Rescored)/float64(b.N), "rescores/op")
		})
		b.Run(shape.name+"/full", func(b *testing.B) {
			g := datasets.Cybersecurity(datasets.Options{Seed: 7, ViolationRate: 0.03})
			rs := oracleRules("Cybersecurity")
			sc := NewScorer(g)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				shape.mutate(g, i)
				for _, r := range rs {
					if _, err := sc.EvaluateRule(r); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}
