package lint

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/graphrules/graphrules/internal/cypher"
	"github.com/graphrules/graphrules/internal/datasets"
	"github.com/graphrules/graphrules/internal/graph"
)

var update = flag.Bool("update", false, "rewrite the golden diagnostic files")

// corpusDatasets maps corpus files to the dataset whose schema they lint
// against.
var corpusDatasets = map[string]string{
	"wwc2019":       "WWC2019",
	"cybersecurity": "Cybersecurity",
	"twitter":       "Twitter",
}

func schemaFor(t *testing.T, dataset string) *graph.Schema {
	t.Helper()
	gen, err := datasets.ByName(dataset)
	if err != nil {
		t.Fatal(err)
	}
	return graph.ExtractSchema(gen(datasets.DefaultOptions()))
}

func corpusQueries(t *testing.T, file string) []string {
	t.Helper()
	data, err := os.ReadFile(file)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		out = append(out, line)
	}
	return out
}

// renderCorpus produces the golden text: each query followed by its
// diagnostics and the result of applying any suggested fix.
func renderCorpus(t *testing.T, queries []string, schema *graph.Schema) string {
	t.Helper()
	var b strings.Builder
	for _, src := range queries {
		fmt.Fprintln(&b, src)
		for _, d := range Source(src, schema, Options{}) {
			fmt.Fprintf(&b, "    %s\n", d)
			if d.Fix != nil {
				fixed, err := ApplyFix(src, d.Fix)
				if err != nil {
					t.Errorf("fix %q on %q does not apply: %v", d.Fix.Message, src, err)
					continue
				}
				fmt.Fprintf(&b, "    fix: %s\n", fixed)
			}
		}
	}
	return b.String()
}

// TestGolden locks the exact diagnostics (spans, messages, fixes) for every
// corpus query against each dataset's schema. Refresh with `go test
// ./internal/lint -update`.
func TestGolden(t *testing.T) {
	for name, dataset := range corpusDatasets {
		t.Run(name, func(t *testing.T) {
			queries := corpusQueries(t, filepath.Join("testdata", name+".cypher"))
			got := renderCorpus(t, queries, schemaFor(t, dataset))
			golden := filepath.Join("testdata", name+".golden")
			if *update {
				if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("%v (run with -update to create)", err)
			}
			if got != string(want) {
				t.Errorf("diagnostics drifted from %s:\n--- got ---\n%s--- want ---\n%s", golden, got, want)
			}
		})
	}
}

// TestEveryAnalyzerCovered asserts each registered analyzer (plus the syntax
// pseudo-analyzer) fires at least once across the golden corpora — the
// acceptance bar for "each analyzer has a golden diagnostic test".
func TestEveryAnalyzerCovered(t *testing.T) {
	fired := map[string]bool{}
	for name, dataset := range corpusDatasets {
		schema := schemaFor(t, dataset)
		for _, src := range corpusQueries(t, filepath.Join("testdata", name+".cypher")) {
			for _, d := range Source(src, schema, Options{}) {
				fired[d.Analyzer] = true
			}
		}
	}
	want := []string{SyntaxAnalyzer}
	for _, a := range Analyzers() {
		want = append(want, a.Name)
	}
	if len(want) < 9 { // 8 analyzers + syntax
		t.Fatalf("only %d analyzers registered, want at least 8", len(want)-1)
	}
	for _, name := range want {
		if !fired[name] {
			t.Errorf("analyzer %q produced no finding on any corpus", name)
		}
	}
}

// TestSuggestedFixRoundTrip: applying any suggested fix must yield source
// that re-parses, and the fixed query must no longer trigger the analyzer
// that proposed it (at least not as often).
func TestSuggestedFixRoundTrip(t *testing.T) {
	fixes := 0
	for name, dataset := range corpusDatasets {
		schema := schemaFor(t, dataset)
		for _, src := range corpusQueries(t, filepath.Join("testdata", name+".cypher")) {
			diags := Source(src, schema, Options{})
			for _, d := range diags {
				if d.Fix == nil {
					continue
				}
				fixes++
				fixed, err := ApplyFix(src, d.Fix)
				if err != nil {
					t.Errorf("%s: fix %q does not apply to %q: %v", name, d.Fix.Message, src, err)
					continue
				}
				if _, err := cypher.Parse(fixed); err != nil {
					t.Errorf("%s: fixed query does not parse:\noriginal: %s\nfixed:    %s\nerr: %v", name, src, fixed, err)
					continue
				}
				before := countByAnalyzer(diags, d.Analyzer)
				after := countByAnalyzer(Source(fixed, schema, Options{}), d.Analyzer)
				if after >= before {
					t.Errorf("%s: fix %q did not reduce %s findings (%d -> %d):\noriginal: %s\nfixed:    %s",
						name, d.Fix.Message, d.Analyzer, before, after, src, fixed)
				}
			}
		}
	}
	if fixes < 4 {
		t.Fatalf("corpora exercised only %d suggested fixes, want several", fixes)
	}
}

func countByAnalyzer(diags []Diagnostic, analyzer string) int {
	n := 0
	for _, d := range diags {
		if d.Analyzer == analyzer {
			n++
		}
	}
	return n
}

// TestLooksLikeRegex is the table-driven edge-case suite the old
// correction.looksLikeRegex lacked: anchored-but-literal strings and escaped
// metacharacters in particular.
func TestLooksLikeRegex(t *testing.T) {
	cases := []struct {
		s    string
		want bool
	}{
		// Plain literals must not be flagged.
		{"Alice", false},
		{"https://example.com", false},
		{"a+b", false},
		{"why?", false},
		{"USD 5$", false},     // trailing $ alone is currency, not an anchor
		{"{brace}", false},    // braces without a quantifier shape
		{"x{two,}", false},    // non-numeric quantifier body
		{"[abc]", false},      // bare character class without range evidence
		{"C:\\Users", false},  // unknown escape is not regex evidence
		{"back\\slash", true}, // ...but \s is a whitespace class
		// Real regex shapes must be flagged.
		{"^start", true},
		{"^a.*$", true},
		{".*", true},
		{"https?://.+", true},
		{`\d{4}-\d{2}-\d{2}`, true},
		{`([a-zA-Z0-9-]+\.)+[a-zA-Z]{2,}`, true},
		{`\w+`, true},
		{`end\.$`, true},            // escaped metachar + anchored tail
		{`www\.example\.com`, true}, // escaped dots are regex evidence
		{"[a-z]+", true},
		{"[0-9]", true},
		{"a{2,5}", true},
		{"a{3}", true},
		{"(foo)+)", true},
	}
	for _, c := range cases {
		if got := LooksLikeRegex(c.s); got != c.want {
			t.Errorf("LooksLikeRegex(%q) = %v, want %v", c.s, got, c.want)
		}
	}
}

func TestOptionsEnableDisable(t *testing.T) {
	schema := schemaFor(t, "Twitter")
	src := `MATCH (u:User) WHERE u.followerCount > 10 RETURN q.name`
	all := Source(src, schema, Options{})
	if countByAnalyzer(all, "unknownprop") == 0 || countByAnalyzer(all, "unboundvar") == 0 {
		t.Fatalf("fixture should trip unknownprop and unboundvar, got %v", all)
	}
	only := Source(src, schema, Options{Enable: []string{"unboundvar"}})
	for _, d := range only {
		if d.Analyzer != "unboundvar" {
			t.Errorf("Enable leaked analyzer %q", d.Analyzer)
		}
	}
	without := Source(src, schema, Options{Disable: []string{"unknownprop"}})
	if countByAnalyzer(without, "unknownprop") != 0 {
		t.Errorf("Disable did not remove unknownprop: %v", without)
	}
}

func TestDiagnosticsSortedBySpan(t *testing.T) {
	schema := schemaFor(t, "Twitter")
	diags := Source(`MATCH (t:Tweet)-[:POSTS]->(u:User) WHERE u.followerCount > 10 RETURN u.nmae`, schema, Options{})
	for i := 1; i < len(diags); i++ {
		if diags[i].Span.Start < diags[i-1].Span.Start {
			t.Fatalf("diagnostics not sorted by span: %v", diags)
		}
	}
}

func TestEditDistance(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"abc", "abc", 0},
		{"abc", "abd", 1},
		{"minute", "minutes", 1},
		{"followers", "followerCount", 5},
		{"kitten", "sitting", 3},
	}
	for _, c := range cases {
		if got := editDistance(c.a, c.b); got != c.want {
			t.Errorf("editDistance(%q, %q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestDidYouMean(t *testing.T) {
	props := []string{"followers", "id", "name", "screen_name"}
	if got := didYouMean("folowers", props); got != "followers" {
		t.Errorf("didYouMean(folowers) = %q", got)
	}
	if got := didYouMean("sentiment", props); got != "" {
		t.Errorf("didYouMean(sentiment) = %q, want no suggestion", got)
	}
	// Short names get a tighter budget: "ix" must not match "id".
	if got := didYouMean("xy", props); got != "" {
		t.Errorf("didYouMean(xy) = %q, want no suggestion", got)
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Register did not panic")
		}
	}()
	Register(&Analyzer{Name: "unknownprop", Doc: "dup", Run: func(*Pass) {}})
}
