# Analyzer fixtures against the WWC2019 schema (one query per line).
# clean reference shape
MATCH (p:Person)-[:IN_SQUAD]->(s:Squad) RETURN count(*) AS support
# unknownlabel with did-you-mean
MATCH (m:Matchs) RETURN m.id
# unknownreltype with did-you-mean
MATCH (p:Person)-[:SCORED_GOALS]->(m:Match) RETURN count(*) AS n
# unknownprop: the proposer's seeded hallucinated key
MATCH (p:Person) WHERE p.penaltyScore > 0 RETURN p.name
# unknownprop with did-you-mean
MATCH (m:Match) WHERE m.score3 > 2 RETURN m.id
# reldirection: SCORED_GOAL is (:Person)->(:Match)
MATCH (m:Match)-[:SCORED_GOAL]->(p:Person) RETURN p.name
# unboundvar: q never bound
MATCH (p:Person) RETURN q.name
# unboundvar: ORDER BY sees only output columns
MATCH (p:Person) RETURN p.name AS n ORDER BY p.dob
# unusedvar: g bound, never referenced
MATCH (p:Person)-[g:SCORED_GOAL]->(m:Match) RETURN p.name, m.id
# unknownfunc with did-you-mean
MATCH (p:Person) RETURN siz(p.name)
# aggmix: aggregate in WHERE
MATCH (p:Person) WHERE count(*) > 1 RETURN p.id
# aggmix: bare value mixed with an aggregate
MATCH (p:Person) RETURN p.name, count(*)
# aggmix: nested aggregate
MATCH (p:Person) RETURN count(collect(p.id))
# typecheck: string property compared to a number
MATCH (p:Person) WHERE p.name > 5 RETURN p.id
# typecheck: string operator on an int property
MATCH (m:Match) WHERE m.id STARTS WITH 'a' RETURN m.id
# contradiction: equality conflict
MATCH (m:Match) WHERE m.score1 = 1 AND m.score1 = 2 RETURN m.id
# contradiction: empty interval
MATCH (t:Team) WHERE t.ranking > 3 AND t.ranking < 2 RETURN t.name
# regexeq: date pattern compared with =
MATCH (p:Person) WHERE p.dob = '\d{4}-\d{2}-\d{2}' RETURN p.name
# cartesian product
MATCH (p:Person), (t:Team) RETURN p.name, t.name
# indexseek: equality in WHERE instead of inline
MATCH (t:Team) WHERE t.name = 'USA' RETURN t.ranking
# indexseek: range on a labeled node is ordered-index eligible (no finding)
MATCH (t:Team) WHERE t.ranking <= 10 RETURN t.name
# indexseek: range on an unlabeled node cannot seek
MATCH (x) WHERE x.ranking <= 10 RETURN count(*) AS n
# indexseek: range on a typed relationship is edge-index eligible (no finding)
MATCH (p:Person)-[g:SCORED_GOAL]->(m:Match) WHERE g.minute >= 80 RETURN count(*) AS n
# syntax
MATCH (p:Person RETURN p
