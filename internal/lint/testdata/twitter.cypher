# Analyzer fixtures against the Twitter schema, one per §4.4 error category
# plus the correct case (one query per line).
# correct
MATCH (u:User)-[:POSTS]->(t:Tweet) WHERE u.followers > 1000 RETURN count(*) AS support
# hallucinated property (§4.4)
MATCH (u:User) WHERE u.followerCount > 10 RETURN u.name
# direction error (§4.4): POSTS is (:User)->(:Tweet)
MATCH (t:Tweet)-[:POSTS]->(u:User) RETURN u.name
# syntax error, regex-as-equality form (§4.4)
MATCH (l:Link) WHERE l.url = 'https?://.+' RETURN l.url
# syntax error, unparseable form (§4.4)
MATCH (u:User)-[:POSTS]->(t:Tweet RETURN t.id
# did-you-mean across node properties
MATCH (u:User) WHERE u.folowers > 10 RETURN u.name
# inline pattern property hallucination
MATCH (u:User {verified: true})-[:POSTS]->(t:Tweet) RETURN t.id
# direction fix on the left-arrow form: POSTS written as (:Tweet)->(:User)
MATCH (u:User)<-[:POSTS]-(t:Tweet) RETURN u.name, t.id
