# Analyzer fixtures against the Cybersecurity schema (one query per line).
# clean
MATCH (u:User)-[:MEMBER_OF]->(g:Group) RETURN count(*) AS support
# unknownlabel
MATCH (c:Computers) RETURN c.name
# unknownreltype
MATCH (u:User)-[:MEMBERS_OF]->(g:Group) RETURN count(*) AS n
# unknownprop: seeded hallucinated key on User
MATCH (u:User) WHERE u.status = 'active' RETURN u.name
# unknownprop on an edge
MATCH (g:GPO)-[l:GP_LINK]->(o:OU) WHERE l.enforce = true RETURN g.name
# reldirection: HAS_SESSION is (:Computer)->(:User)
MATCH (u:User)-[:HAS_SESSION]->(c:Computer) RETURN c.name
# unboundvar inside a SET target
MATCH (u:User) SET v.enabled = false
# unusedvar
MATCH (g:GPO)-[e:GP_LINK]->(o:OU) RETURN g.name, o.name
# unknownfunc
MATCH (u:User) RETURN lenght(u.name)
# aggmix in ORDER BY
MATCH (u:User) RETURN u.name AS n ORDER BY count(*)
# typecheck: bool property against an int
MATCH (u:User) WHERE u.enabled = 1 RETURN u.name
# contradiction: IS NULL vs equality
MATCH (u:User) WHERE u.name IS NULL AND u.name = 'x' RETURN u.id
# regexeq
MATCH (d:Domain) WHERE d.domain = '([a-zA-Z0-9-]+\.)+[a-zA-Z]{2,}' RETURN d.name
# cartesian
MATCH (u:User), (c:Computer) RETURN u.name, c.name
# indexseek: unlabeled variable cannot use an index
MATCH (x) WHERE x.name = 'DC01' RETURN x
# syntax
MATCH (u:User)-[:OWNS->(c:Computer) RETURN c
