package lint

import (
	"fmt"
	"strings"

	"github.com/graphrules/graphrules/internal/cypher"
	"github.com/graphrules/graphrules/internal/graph"
)

func init() {
	Register(&Analyzer{
		Name:     "typecheck",
		Doc:      "comparison between a property and a literal of a kind the schema has never observed for it",
		Severity: Warning,
		Run:      runTypeCheck,
	})
	Register(&Analyzer{
		Name:     "contradiction",
		Doc:      "WHERE conjunction that no value can satisfy",
		Severity: Warning,
		Run:      runContradiction,
	})
	Register(&Analyzer{
		Name:     "regexeq",
		Doc:      "`=` used against a regular-expression literal where `=~` is required (the paper's syntax-error example)",
		Severity: Error,
		Run:      runRegexEq,
	})
}

// propKindOf infers the single observed kind of v.key from the schema, or
// ok=false when the variable is unconstrained, the key unknown, or the
// observed kinds ambiguous.
func (p *Pass) propKindOf(v *cypher.Variable, key string) (graph.Kind, bool) {
	if p.Schema == nil {
		return graph.KindNull, false
	}
	sc := p.scopes()
	kinds := map[graph.Kind]bool{}
	for _, l := range sc.nodeLabels[v.Name] {
		ls := p.Schema.NodeLabels[l]
		if ls == nil {
			continue
		}
		ps := ls.Props[key]
		if ps == nil {
			return graph.KindNull, false // unknownprop's territory
		}
		for k := range ps.Kinds {
			kinds[k] = true
		}
	}
	for _, t := range sc.edgeTypes[v.Name] {
		es := p.Schema.EdgeLabels[t]
		if es == nil {
			continue
		}
		ps := es.Props[key]
		if ps == nil {
			return graph.KindNull, false
		}
		for k := range ps.Kinds {
			kinds[k] = true
		}
	}
	if len(kinds) != 1 {
		return graph.KindNull, false
	}
	for k := range kinds {
		return k, true
	}
	return graph.KindNull, false
}

func numericKind(k graph.Kind) bool { return k == graph.KindInt || k == graph.KindFloat }

var comparisonOps = map[cypher.BinaryOp]bool{
	cypher.OpEq: true, cypher.OpNeq: true, cypher.OpLt: true,
	cypher.OpGt: true, cypher.OpLte: true, cypher.OpGte: true,
}

var stringOps = map[cypher.BinaryOp]string{
	cypher.OpStartsWith: "STARTS WITH",
	cypher.OpEndsWith:   "ENDS WITH",
	cypher.OpContains:   "CONTAINS",
	cypher.OpRegex:      "=~",
}

// propAndLiteral decomposes a binary comparison into (v.key, literal) in
// either operand order; flipped reports the literal was on the left.
func propAndLiteral(b *cypher.Binary) (v *cypher.Variable, key string, lit *cypher.Literal, flipped, ok bool) {
	if pa, okL := b.L.(*cypher.PropAccess); okL {
		if vv, okV := pa.Target.(*cypher.Variable); okV {
			if l, okR := b.R.(*cypher.Literal); okR {
				return vv, pa.Key, l, false, true
			}
		}
	}
	if pa, okR := b.R.(*cypher.PropAccess); okR {
		if vv, okV := pa.Target.(*cypher.Variable); okV {
			if l, okL := b.L.(*cypher.Literal); okL {
				return vv, pa.Key, l, true, true
			}
		}
	}
	return nil, "", nil, false, false
}

func runTypeCheck(p *Pass) {
	if p.Schema == nil {
		return
	}
	cypher.WalkExprs(p.Query, func(e cypher.Expr) {
		b, ok := e.(*cypher.Binary)
		if !ok {
			return
		}
		if opName, isStr := stringOps[b.Op]; isStr {
			// String operators need string operands on both sides.
			if lit, okR := b.R.(*cypher.Literal); okR && !lit.Value.IsNull() && lit.Value.Kind() != graph.KindString {
				p.Reportf(b.OpSpan, "%s requires a string on the right, got %s", opName, lit.Value.Kind())
			}
			if pa, okL := b.L.(*cypher.PropAccess); okL {
				if v, okV := pa.Target.(*cypher.Variable); okV {
					if k, known := p.propKindOf(v, pa.Key); known && k != graph.KindString {
						p.Reportf(b.OpSpan, "%s.%s is always %s in the schema; %s never matches",
							v.Name, pa.Key, k, opName)
					}
				}
			}
			return
		}
		if !comparisonOps[b.Op] {
			return
		}
		v, key, lit, _, okCmp := propAndLiteral(b)
		if !okCmp || lit.Value.IsNull() {
			return
		}
		pk, known := p.propKindOf(v, key)
		if !known {
			return
		}
		lk := lit.Value.Kind()
		if pk == lk || (numericKind(pk) && numericKind(lk)) {
			return
		}
		p.Reportf(b.OpSpan, "%s.%s is always %s in the schema but is compared to a %s literal",
			v.Name, key, pk, lk)
	})
}

// constraint is one literal bound on a (variable, key) pair gathered from an
// AND conjunction.
type constraint struct {
	op   cypher.BinaryOp // normalized so the property is on the left
	val  graph.Value
	span cypher.Span
	text string
}

// flipOp mirrors a comparison when operands are swapped: 5 < x.k becomes
// x.k > 5.
func flipOp(op cypher.BinaryOp) cypher.BinaryOp {
	switch op {
	case cypher.OpLt:
		return cypher.OpGt
	case cypher.OpGt:
		return cypher.OpLt
	case cypher.OpLte:
		return cypher.OpGte
	case cypher.OpGte:
		return cypher.OpLte
	default:
		return op
	}
}

func runContradiction(p *Pass) {
	checkWhere := func(where cypher.Expr) {
		if where == nil {
			return
		}
		var cs []cypher.Expr
		conjuncts(where, &cs)
		type slot struct {
			cons   []constraint
			isNull *cypher.IsNull
		}
		slots := map[string]*slot{}
		get := func(v, key string) *slot {
			k := v + "." + key
			s := slots[k]
			if s == nil {
				s = &slot{}
				slots[k] = s
			}
			return s
		}
		for _, c := range cs {
			switch x := c.(type) {
			case *cypher.Binary:
				if !comparisonOps[x.Op] {
					continue
				}
				v, key, lit, flipped, ok := propAndLiteral(x)
				if !ok || lit.Value.IsNull() {
					continue
				}
				op := x.Op
				if flipped {
					op = flipOp(op)
				}
				s := get(v.Name, key)
				cur := constraint{op: op, val: lit.Value, span: x.OpSpan,
					text: fmt.Sprintf("%s.%s %s %s", v.Name, key, opText(op), lit.Value)}
				if s.isNull != nil {
					p.Reportf(x.OpSpan, "%s contradicts %s.%s IS NULL", cur.text, v.Name, key)
					continue
				}
				for _, prev := range s.cons {
					if msg, bad := conflict(prev, cur); bad {
						p.Report(x.OpSpan, msg)
						break
					}
				}
				s.cons = append(s.cons, cur)
			case *cypher.IsNull:
				if x.Negate {
					continue
				}
				pa, ok := x.E.(*cypher.PropAccess)
				if !ok {
					continue
				}
				v, ok := pa.Target.(*cypher.Variable)
				if !ok {
					continue
				}
				s := get(v.Name, pa.Key)
				if len(s.cons) > 0 {
					p.Reportf(pa.KeySpan, "%s.%s IS NULL contradicts %s", v.Name, pa.Key, s.cons[0].text)
					continue
				}
				s.isNull = x
			}
		}
	}
	for _, cl := range p.Query.Clauses {
		switch c := cl.(type) {
		case *cypher.MatchClause:
			checkWhere(c.Where)
		case *cypher.WithClause:
			checkWhere(c.Where)
		}
	}
}

func opText(op cypher.BinaryOp) string {
	switch op {
	case cypher.OpEq:
		return "="
	case cypher.OpNeq:
		return "<>"
	case cypher.OpLt:
		return "<"
	case cypher.OpGt:
		return ">"
	case cypher.OpLte:
		return "<="
	case cypher.OpGte:
		return ">="
	default:
		return "?"
	}
}

// conflict reports whether two constraints on the same property cannot both
// hold. Comparisons between incomparable kinds are left alone.
func conflict(a, b constraint) (string, bool) {
	contradicts := func(x, y constraint) bool {
		switch x.op {
		case cypher.OpEq:
			switch y.op {
			case cypher.OpEq:
				// Two equalities with distinct comparable values.
				if _, ok := x.val.Compare(y.val); ok && !x.val.Equal(y.val) {
					return true
				}
			case cypher.OpNeq:
				return x.val.Equal(y.val)
			case cypher.OpLt:
				if c, ok := x.val.Compare(y.val); ok && c >= 0 {
					return true
				}
			case cypher.OpLte:
				if c, ok := x.val.Compare(y.val); ok && c > 0 {
					return true
				}
			case cypher.OpGt:
				if c, ok := x.val.Compare(y.val); ok && c <= 0 {
					return true
				}
			case cypher.OpGte:
				if c, ok := x.val.Compare(y.val); ok && c < 0 {
					return true
				}
			}
		case cypher.OpLt, cypher.OpLte:
			switch y.op {
			case cypher.OpGt, cypher.OpGte:
				c, ok := x.val.Compare(y.val)
				if !ok {
					return false
				}
				if c < 0 {
					return true // upper bound below lower bound
				}
				if c == 0 && (x.op == cypher.OpLt || y.op == cypher.OpGt) {
					return true
				}
			}
		case cypher.OpGt, cypher.OpGte:
			switch y.op {
			case cypher.OpLt, cypher.OpLte:
				c, ok := x.val.Compare(y.val)
				if !ok {
					return false
				}
				if c > 0 {
					return true
				}
				if c == 0 && (x.op == cypher.OpGt || y.op == cypher.OpLt) {
					return true
				}
			}
		}
		return false
	}
	if contradicts(a, b) || contradicts(b, a) {
		return fmt.Sprintf("%s contradicts %s; the conjunction is always false", b.text, a.text), true
	}
	return "", false
}

func runRegexEq(p *Pass) {
	cypher.WalkExprs(p.Query, func(e cypher.Expr) {
		b, ok := e.(*cypher.Binary)
		if !ok || b.Op != cypher.OpEq {
			return
		}
		lit, ok := b.R.(*cypher.Literal)
		if !ok || lit.Value.Kind() != graph.KindString {
			return
		}
		if !LooksLikeRegex(lit.Value.Str()) {
			return
		}
		var fix *SuggestedFix
		if !b.OpSpan.IsZero() && p.Src != "" {
			fix = &SuggestedFix{
				Message: "use the regular-expression operator =~",
				Edits:   []TextEdit{{Span: b.OpSpan, NewText: "=~"}},
			}
		}
		p.ReportFix(b.OpSpan, fmt.Sprintf("`=` compares literally; %q looks like a regular expression (use `=~`)", lit.Value.Str()), fix)
	})
}

// LooksLikeRegex reports whether a string literal reads as a regular
// expression rather than plain text. The scan is escape-aware: `\d`-style
// class shorthands and escaped metacharacters (`\.`) are regex evidence —
// no plain value contains a backslash-escaped dot — while a lone trailing
// `$` (currency) or a metacharacter that is itself escaped does not count.
func LooksLikeRegex(s string) bool {
	if s == "" {
		return false
	}
	if s[0] == '^' {
		return true
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch c {
		case '\\':
			if i+1 >= len(s) {
				return false // trailing bare backslash: malformed either way
			}
			next := s[i+1]
			if strings.IndexByte(`dwsDWSb`, next) >= 0 {
				return true // class shorthand
			}
			if strings.IndexByte(`.$^()[]{}+*?|/\`, next) >= 0 {
				return true // escaped metacharacter: only regexes do this
			}
			i++ // unknown escape: skip the escaped byte, not evidence
		case '[':
			for _, class := range []string{"a-z", "A-Z", "0-9"} {
				if strings.HasPrefix(s[i+1:], class) {
					return true
				}
			}
		case '.':
			if i+1 < len(s) && (s[i+1] == '*' || s[i+1] == '+') {
				return true
			}
		case '+':
			if i+1 < len(s) && s[i+1] == ')' {
				return true // quantified group: ...]+)
			}
		case '{':
			if quantifierAt(s[i:]) {
				return true
			}
		}
	}
	return false
}

// quantifierAt reports whether s starts with a regex repetition quantifier:
// {m}, {m,} or {m,n}.
func quantifierAt(s string) bool {
	i := 1
	start := i
	for i < len(s) && s[i] >= '0' && s[i] <= '9' {
		i++
	}
	if i == start {
		return false
	}
	if i < len(s) && s[i] == ',' {
		i++
		for i < len(s) && s[i] >= '0' && s[i] <= '9' {
			i++
		}
	}
	return i < len(s) && s[i] == '}'
}
