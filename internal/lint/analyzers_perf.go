package lint

import (
	"github.com/graphrules/graphrules/internal/cypher"
)

func init() {
	Register(&Analyzer{
		Name:     "cartesian",
		Doc:      "MATCH with disconnected pattern parts builds a cartesian product",
		Severity: Warning,
		Run:      runCartesian,
	})
	Register(&Analyzer{
		Name:     "indexseek",
		Doc:      "equality predicate written where the planner cannot use the label+property index (inline pattern properties are index-eligible, WHERE equalities are not)",
		Severity: Info,
		Run:      runIndexSeek,
	})
}

// runCartesian warns when one MATCH clause contains pattern parts that share
// no variables — neither with each other nor with anything bound earlier —
// so the executor must enumerate their cross product.
func runCartesian(p *Pass) {
	bound := map[string]bool{}
	for _, cl := range p.Query.Clauses {
		m, ok := cl.(*cypher.MatchClause)
		if !ok {
			// Conservatively mark everything any other clause binds.
			switch c := cl.(type) {
			case *cypher.CreateClause:
				for _, part := range c.Patterns {
					addPatternVars(part, bound)
				}
			case *cypher.UnwindClause:
				bound[c.Alias] = true
			case *cypher.WithClause:
				for _, it := range c.Items {
					bound[it.Name()] = true
				}
			}
			continue
		}
		if len(m.Patterns) > 1 {
			// Union-find over the parts; parts touching any previously
			// bound variable share the "anchored" component 0..n-1 ∪ {n}.
			n := len(m.Patterns)
			parent := make([]int, n+1)
			for i := range parent {
				parent[i] = i
			}
			var find func(int) int
			find = func(x int) int {
				for parent[x] != x {
					parent[x] = parent[parent[x]]
					x = parent[x]
				}
				return x
			}
			union := func(a, b int) { parent[find(a)] = find(b) }
			varParts := map[string]int{}
			for i, part := range m.Patterns {
				vars := map[string]bool{}
				addPatternVars(part, vars)
				for v := range vars {
					if bound[v] {
						union(i, n) // anchored to the outer scope
					}
					if j, seen := varParts[v]; seen {
						union(i, j)
					} else {
						varParts[v] = i
					}
				}
			}
			first := find(0)
			for i := 1; i < n; i++ {
				if find(i) != first {
					p.Reportf(m.Patterns[i].SourceSpan(),
						"pattern shares no variables with the preceding patterns; this MATCH builds a cartesian product")
					// Merge so one disconnected clause reports once per
					// extra component, not once per part.
					union(i, 0)
					first = find(0)
				}
			}
		}
		for _, part := range m.Patterns {
			addPatternVars(part, bound)
		}
	}
}

// runIndexSeek flags WHERE equality predicates the cost-based planner cannot
// turn into LabelPropNodes index seeks: anchors are only seeded from labeled
// node patterns with inline literal properties (see cypher/plan.go), so
// `MATCH (v:L) WHERE v.key = lit` scans all :L nodes.
func runIndexSeek(p *Pass) {
	for _, cl := range p.Query.Clauses {
		m, ok := cl.(*cypher.MatchClause)
		if !ok || m.Where == nil {
			continue
		}
		// Node variables bound by this clause, with their label counts.
		labeled := map[string]*cypher.NodePattern{}
		for _, part := range m.Patterns {
			for _, n := range part.Nodes {
				if n.Var != "" {
					labeled[n.Var] = n
				}
			}
		}
		var cs []cypher.Expr
		conjuncts(m.Where, &cs)
		for _, c := range cs {
			b, ok := c.(*cypher.Binary)
			if !ok || b.Op != cypher.OpEq {
				continue
			}
			v, key, lit, _, ok := propAndLiteral(b)
			if !ok || lit.Value.IsNull() {
				continue
			}
			np, isNodeVar := labeled[v.Name]
			if !isNodeVar {
				continue
			}
			if len(np.Labels) == 0 {
				p.Reportf(b.OpSpan,
					"equality on %s.%s cannot use an index: the pattern binds `%s` without a label",
					v.Name, key, v.Name)
				continue
			}
			p.Reportf(b.OpSpan,
				"equality on %s.%s in WHERE is not index-eligible; write it inline as (%s:%s {%s: %s}) to enable an index seek",
				v.Name, key, v.Name, np.Labels[0], key, lit.Value)
		}
	}
}
