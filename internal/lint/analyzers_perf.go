package lint

import (
	"github.com/graphrules/graphrules/internal/cypher"
)

func init() {
	Register(&Analyzer{
		Name:     "cartesian",
		Doc:      "MATCH with disconnected pattern parts builds a cartesian product",
		Severity: Warning,
		Run:      runCartesian,
	})
	Register(&Analyzer{
		Name:     "indexseek",
		Doc:      "predicate written where the planner cannot use an index: WHERE equalities are only index-eligible inline (node label+property or edge type+property), and range predicates need a labeled node or typed relationship for the ordered index",
		Severity: Info,
		Run:      runIndexSeek,
	})
}

// runCartesian warns when one MATCH clause contains pattern parts that share
// no variables — neither with each other nor with anything bound earlier —
// so the executor must enumerate their cross product.
func runCartesian(p *Pass) {
	bound := map[string]bool{}
	for _, cl := range p.Query.Clauses {
		m, ok := cl.(*cypher.MatchClause)
		if !ok {
			// Conservatively mark everything any other clause binds.
			switch c := cl.(type) {
			case *cypher.CreateClause:
				for _, part := range c.Patterns {
					addPatternVars(part, bound)
				}
			case *cypher.UnwindClause:
				bound[c.Alias] = true
			case *cypher.WithClause:
				for _, it := range c.Items {
					bound[it.Name()] = true
				}
			}
			continue
		}
		if len(m.Patterns) > 1 {
			// Union-find over the parts; parts touching any previously
			// bound variable share the "anchored" component 0..n-1 ∪ {n}.
			n := len(m.Patterns)
			parent := make([]int, n+1)
			for i := range parent {
				parent[i] = i
			}
			var find func(int) int
			find = func(x int) int {
				for parent[x] != x {
					parent[x] = parent[parent[x]]
					x = parent[x]
				}
				return x
			}
			union := func(a, b int) { parent[find(a)] = find(b) }
			varParts := map[string]int{}
			for i, part := range m.Patterns {
				vars := map[string]bool{}
				addPatternVars(part, vars)
				for v := range vars {
					if bound[v] {
						union(i, n) // anchored to the outer scope
					}
					if j, seen := varParts[v]; seen {
						union(i, j)
					} else {
						varParts[v] = i
					}
				}
			}
			first := find(0)
			for i := 1; i < n; i++ {
				if find(i) != first {
					p.Reportf(m.Patterns[i].SourceSpan(),
						"pattern shares no variables with the preceding patterns; this MATCH builds a cartesian product")
					// Merge so one disconnected clause reports once per
					// extra component, not once per part.
					union(i, 0)
					first = find(0)
				}
			}
		}
		for _, part := range m.Patterns {
			addPatternVars(part, bound)
		}
	}
}

// runIndexSeek flags WHERE predicates the planner cannot turn into index
// seeks, and stays silent on the ones it can:
//
//   - equality on a labeled node variable is only index-eligible written
//     inline (`(v:L {key: lit})`), never in WHERE (see cypher/plan.go);
//   - equality on a typed relationship variable is only index-eligible
//     inline (`[r:T {key: lit}]`), where the ordered edge index serves it;
//   - range predicates (<, <=, >, >=, STARTS WITH) on a labeled node or
//     typed relationship variable ARE seek-able in WHERE via the ordered
//     property index, so they are not flagged — only unlabeled/untyped
//     variables, which no index can serve, draw a diagnostic.
func runIndexSeek(p *Pass) {
	for _, cl := range p.Query.Clauses {
		m, ok := cl.(*cypher.MatchClause)
		if !ok || m.Where == nil {
			continue
		}
		// Variables bound by this clause's patterns.
		nodes := map[string]*cypher.NodePattern{}
		rels := map[string]*cypher.RelPattern{}
		for _, part := range m.Patterns {
			for _, n := range part.Nodes {
				if n.Var != "" {
					nodes[n.Var] = n
				}
			}
			for _, r := range part.Rels {
				if r.Var != "" {
					rels[r.Var] = r
				}
			}
		}
		var cs []cypher.Expr
		conjuncts(m.Where, &cs)
		for _, c := range cs {
			b, ok := c.(*cypher.Binary)
			if !ok {
				continue
			}
			isRange := false
			switch b.Op {
			case cypher.OpEq:
			case cypher.OpLt, cypher.OpLte, cypher.OpGt, cypher.OpGte, cypher.OpStartsWith:
				isRange = true
			default:
				continue
			}
			v, key, lit, flipped, ok := propAndLiteral(b)
			if !ok || lit.Value.IsNull() {
				continue
			}
			if flipped && b.Op == cypher.OpStartsWith {
				continue // `lit STARTS WITH v.key` constrains nothing seek-able
			}
			if rp, isRelVar := rels[v.Name]; isRelVar {
				if len(rp.Types) == 0 {
					p.Reportf(b.OpSpan,
						"predicate on %s.%s cannot use the edge index: the pattern binds `%s` without a relationship type",
						v.Name, key, v.Name)
					continue
				}
				if !isRange {
					p.Reportf(b.OpSpan,
						"equality on %s.%s in WHERE is not index-eligible; write it inline as [%s:%s {%s: %s}] to enable an edge-index seek",
						v.Name, key, v.Name, rp.Types[0], key, lit.Value)
				}
				// Ranges on a typed relationship seek via the ordered edge
				// index directly from WHERE: nothing to report.
				continue
			}
			np, isNodeVar := nodes[v.Name]
			if !isNodeVar {
				continue
			}
			if len(np.Labels) == 0 {
				p.Reportf(b.OpSpan,
					"predicate on %s.%s cannot use an index: the pattern binds `%s` without a label",
					v.Name, key, v.Name)
				continue
			}
			if !isRange {
				p.Reportf(b.OpSpan,
					"equality on %s.%s in WHERE is not index-eligible; write it inline as (%s:%s {%s: %s}) to enable an index seek",
					v.Name, key, v.Name, np.Labels[0], key, lit.Value)
			}
			// Ranges on a labeled node seek via the ordered property index
			// directly from WHERE: nothing to report.
		}
	}
}
