// Package lint is a vet-style static-analysis framework for the Cypher
// subset. A registry of independent analyzers runs over a parsed query plus
// the extracted graph schema, each emitting structured Diagnostics with
// byte-offset spans and, where possible, machine-applicable fixes.
//
// The framework backs the paper's §4.4 correction protocol (see
// internal/correction): classification of LLM-generated queries into
// correct / direction-error / hallucinated-property / syntax-error falls
// out of which analyzers fire.
package lint

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"github.com/graphrules/graphrules/internal/cypher"
	"github.com/graphrules/graphrules/internal/graph"
)

// Severity ranks a diagnostic.
type Severity uint8

const (
	// Info diagnostics are stylistic or advisory; they never gate.
	Info Severity = iota
	// Warning diagnostics flag likely mistakes that still execute.
	Warning
	// Error diagnostics flag queries that are wrong against the schema or
	// cannot execute correctly; cypherlint exits nonzero on them.
	Error
)

func (s Severity) String() string {
	switch s {
	case Info:
		return "info"
	case Warning:
		return "warning"
	case Error:
		return "error"
	default:
		return "unknown"
	}
}

// TextEdit replaces the source bytes in Span with NewText.
type TextEdit struct {
	Span    cypher.Span
	NewText string
}

// SuggestedFix is a machine-applicable repair for a diagnostic.
type SuggestedFix struct {
	Message string
	Edits   []TextEdit
}

// Diagnostic is one finding: which analyzer fired, how severe, where in the
// source, and an optional fix.
type Diagnostic struct {
	Analyzer string
	Severity Severity
	Span     cypher.Span
	Message  string
	Fix      *SuggestedFix
}

// String renders the diagnostic in a compact file-less vet style:
// "offset: severity: message (analyzer)".
func (d Diagnostic) String() string {
	return fmt.Sprintf("%d: %s: %s (%s)", d.Span.Start, d.Severity, d.Message, d.Analyzer)
}

// SyntaxAnalyzer is the pseudo-analyzer name attached to parse failures.
// It is not in the registry: it fires before any AST exists.
const SyntaxAnalyzer = "syntax"

// Analyzer is one registered check.
type Analyzer struct {
	Name     string // short lowercase identifier, e.g. "unknownprop"
	Doc      string // one-line description
	Severity Severity
	Run      func(*Pass)
}

// Pass carries one query through one analyzer run.
type Pass struct {
	Src      string // original source text ("" when linting a built AST)
	Query    *cypher.Query
	Schema   *graph.Schema // may be nil; schema-aware analyzers must no-op
	analyzer *Analyzer
	sink     *[]Diagnostic

	// scope is the lazily computed binding info shared by analyzers.
	scope *scopeInfo
}

// Report emits a diagnostic at span. The analyzer name and default severity
// are filled in automatically.
func (p *Pass) Report(span cypher.Span, msg string) { p.ReportFix(span, msg, nil) }

// Reportf emits a formatted diagnostic at span.
func (p *Pass) Reportf(span cypher.Span, format string, args ...any) {
	p.ReportFix(span, fmt.Sprintf(format, args...), nil)
}

// ReportFix emits a diagnostic carrying a suggested fix.
func (p *Pass) ReportFix(span cypher.Span, msg string, fix *SuggestedFix) {
	p.ReportSeverity(p.analyzer.Severity, span, msg, fix)
}

// ReportSeverity emits a diagnostic overriding the analyzer's default
// severity (for analyzers whose findings vary in gravity).
func (p *Pass) ReportSeverity(sev Severity, span cypher.Span, msg string, fix *SuggestedFix) {
	*p.sink = append(*p.sink, Diagnostic{
		Analyzer: p.analyzer.Name,
		Severity: sev,
		Span:     span,
		Message:  msg,
		Fix:      fix,
	})
}

// registry holds all analyzers in registration order.
var registry []*Analyzer

// Register adds an analyzer; it panics on duplicate names (registration
// happens in package init, so a duplicate is a programming error).
func Register(a *Analyzer) {
	for _, r := range registry {
		if r.Name == a.Name {
			panic("lint: duplicate analyzer " + a.Name)
		}
	}
	registry = append(registry, a)
}

// Analyzers returns the registered analyzers sorted by name.
func Analyzers() []*Analyzer {
	out := make([]*Analyzer, len(registry))
	copy(out, registry)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ByName returns the named analyzer, or nil.
func ByName(name string) *Analyzer {
	for _, a := range registry {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Options selects which analyzers run. The zero value runs all of them.
type Options struct {
	// Enable restricts the run to the named analyzers when non-empty.
	Enable []string
	// Disable removes the named analyzers from the run.
	Disable []string
}

func (o Options) selected() []*Analyzer {
	enabled := map[string]bool{}
	for _, n := range o.Enable {
		enabled[n] = true
	}
	disabled := map[string]bool{}
	for _, n := range o.Disable {
		disabled[n] = true
	}
	var out []*Analyzer
	for _, a := range Analyzers() {
		if len(enabled) > 0 && !enabled[a.Name] {
			continue
		}
		if disabled[a.Name] {
			continue
		}
		out = append(out, a)
	}
	return out
}

// Source parses and lints a query string. A parse failure produces a single
// error-severity diagnostic under the SyntaxAnalyzer name (with the parser's
// byte offset) rather than an error: unparseable input is itself the §4.4
// syntax-error category.
func Source(src string, schema *graph.Schema, opts Options) []Diagnostic {
	q, err := cypher.Parse(src)
	if err != nil {
		span := cypher.Span{}
		msg := err.Error()
		var se *cypher.SyntaxError
		if errors.As(err, &se) {
			span = cypher.Span{Start: se.Pos, End: se.Pos + 1}
			msg = se.Msg
		}
		return []Diagnostic{{
			Analyzer: SyntaxAnalyzer,
			Severity: Error,
			Span:     span,
			Message:  msg,
		}}
	}
	return Query(q, src, schema, opts)
}

// Query lints an already parsed query. src may be "" when the query was
// built programmatically; spans are then whatever the AST carries.
func Query(q *cypher.Query, src string, schema *graph.Schema, opts Options) []Diagnostic {
	var diags []Diagnostic
	pass := &Pass{Src: src, Query: q, Schema: schema, sink: &diags}
	for _, a := range opts.selected() {
		pass.analyzer = a
		a.Run(pass)
	}
	sort.SliceStable(diags, func(i, j int) bool {
		if diags[i].Span.Start != diags[j].Span.Start {
			return diags[i].Span.Start < diags[j].Span.Start
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags
}

// MaxSeverity returns the highest severity among diags, and ok=false when
// there are none.
func MaxSeverity(diags []Diagnostic) (Severity, bool) {
	if len(diags) == 0 {
		return Info, false
	}
	max := Info
	for _, d := range diags {
		if d.Severity > max {
			max = d.Severity
		}
	}
	return max, true
}

// HasError reports whether any diagnostic is error severity.
func HasError(diags []Diagnostic) bool {
	for _, d := range diags {
		if d.Severity == Error {
			return true
		}
	}
	return false
}

// ApplyFix applies a suggested fix's edits to the source text. Edits must
// carry non-zero spans inside src and must not overlap; ApplyFix returns an
// error otherwise.
func ApplyFix(src string, fix *SuggestedFix) (string, error) {
	if fix == nil || len(fix.Edits) == 0 {
		return src, fmt.Errorf("lint: empty fix")
	}
	edits := make([]TextEdit, len(fix.Edits))
	copy(edits, fix.Edits)
	sort.Slice(edits, func(i, j int) bool { return edits[i].Span.Start < edits[j].Span.Start })
	var b strings.Builder
	last := 0
	for _, e := range edits {
		if e.Span.Start < last || e.Span.End < e.Span.Start || e.Span.End > len(src) {
			return "", fmt.Errorf("lint: fix edit span [%d,%d) out of order or out of range", e.Span.Start, e.Span.End)
		}
		b.WriteString(src[last:e.Span.Start])
		b.WriteString(e.NewText)
		last = e.Span.End
	}
	b.WriteString(src[last:])
	return b.String(), nil
}

// editDistance is the Levenshtein distance between two strings, used for
// "did you mean" suggestions.
func editDistance(a, b string) int {
	if a == b {
		return 0
	}
	la, lb := len(a), len(b)
	prev := make([]int, lb+1)
	cur := make([]int, lb+1)
	for j := 0; j <= lb; j++ {
		prev[j] = j
	}
	for i := 1; i <= la; i++ {
		cur[0] = i
		for j := 1; j <= lb; j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			m := prev[j] + 1              // deletion
			if v := cur[j-1] + 1; v < m { // insertion
				m = v
			}
			if v := prev[j-1] + cost; v < m { // substitution
				m = v
			}
			cur[j] = m
		}
		prev, cur = cur, prev
	}
	return prev[lb]
}

// didYouMean picks the closest candidate to name within an edit-distance
// budget scaled to the name's length, comparing case-insensitively. It
// returns "" when nothing is close enough.
func didYouMean(name string, candidates []string) string {
	budget := 2
	if len(name) <= 4 {
		budget = 1
	}
	ln := strings.ToLower(name)
	best, bestD := "", budget+1
	for _, c := range candidates {
		d := editDistance(ln, strings.ToLower(c))
		if d == 0 {
			continue
		}
		if d < bestD || (d == bestD && c < best) {
			best, bestD = c, d
		}
	}
	if bestD > budget {
		return ""
	}
	return best
}
