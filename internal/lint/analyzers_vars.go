package lint

import (
	"fmt"

	"github.com/graphrules/graphrules/internal/cypher"
)

func init() {
	Register(&Analyzer{
		Name:     "unboundvar",
		Doc:      "variable referenced outside the scope that binds it (projections reset scope, as in the executor)",
		Severity: Error,
		Run:      runUnboundVar,
	})
	Register(&Analyzer{
		Name:     "unusedvar",
		Doc:      "pattern variable bound but never referenced",
		Severity: Info,
		Run:      runUnusedVar,
	})
	Register(&Analyzer{
		Name:     "unknownfunc",
		Doc:      "call to a function the engine does not implement",
		Severity: Error,
		Run:      runUnknownFunc,
	})
	Register(&Analyzer{
		Name:     "aggmix",
		Doc:      "aggregation misuse: aggregates outside projection items, nested aggregates, or aggregates mixed with bare values in one item",
		Severity: Error,
		Run:      runAggMix,
	})
}

// runUnboundVar replays the executor's scoping rules clause by clause:
// MATCH/CREATE/UNWIND add bindings, while WITH and RETURN replace the scope
// with their output column names (exactly what the executor's project()
// leaves in the row). Any variable reference outside the current scope
// would fail at runtime with "variable not defined".
func runUnboundVar(p *Pass) {
	scope := map[string]bool{}

	var check func(e cypher.Expr, sc map[string]bool)
	check = func(e cypher.Expr, sc map[string]bool) {
		switch x := e.(type) {
		case nil:
			return
		case *cypher.Variable:
			if !sc[x.Name] {
				p.Reportf(x.Span, "variable `%s` is not defined in this scope", x.Name)
			}
		case *cypher.Binary:
			check(x.L, sc)
			check(x.R, sc)
		case *cypher.Not:
			check(x.E, sc)
		case *cypher.Neg:
			check(x.E, sc)
		case *cypher.IsNull:
			check(x.E, sc)
		case *cypher.HasLabels:
			check(x.E, sc)
		case *cypher.PropAccess:
			check(x.Target, sc)
		case *cypher.Index:
			check(x.Target, sc)
			check(x.Sub, sc)
		case *cypher.FuncCall:
			for _, a := range x.Args {
				check(a, sc)
			}
		case *cypher.ListLit:
			for _, el := range x.Elems {
				check(el, sc)
			}
		case *cypher.CaseExpr:
			check(x.Operand, sc)
			for i := range x.Whens {
				check(x.Whens[i], sc)
				check(x.Thens[i], sc)
			}
			check(x.Else, sc)
		case *cypher.PatternPred:
			// A pattern predicate existentially binds its own fresh
			// variables; its inline props may reference those and the
			// enclosing scope.
			local := map[string]bool{}
			for v := range sc {
				local[v] = true
			}
			addPatternVars(x.Pattern, local)
			for _, e := range patternPropExprs(x.Pattern) {
				check(e, local)
			}
		}
	}
	checkProj := func(proj *cypher.Projection, inScope map[string]bool) map[string]bool {
		for _, it := range proj.Items {
			check(it.Expr, inScope)
		}
		out := map[string]bool{}
		if proj.Star {
			for v := range inScope {
				out[v] = true
			}
		}
		for _, it := range proj.Items {
			out[it.Name()] = true
		}
		// ORDER BY runs on the projected rows: only output columns exist.
		for _, s := range proj.OrderBy {
			check(s.Expr, out)
		}
		// SKIP/LIMIT are evaluated without any row bound.
		check(proj.Skip, map[string]bool{})
		check(proj.Limit, map[string]bool{})
		return out
	}

	for _, cl := range p.Query.Clauses {
		switch c := cl.(type) {
		case *cypher.MatchClause:
			for _, part := range c.Patterns {
				addPatternVars(part, scope)
			}
			for _, part := range c.Patterns {
				for _, e := range patternPropExprs(part) {
					check(e, scope)
				}
			}
			check(c.Where, scope)
		case *cypher.CreateClause:
			// Inline props are evaluated before the new elements bind.
			for _, part := range c.Patterns {
				for _, e := range patternPropExprs(part) {
					check(e, scope)
				}
			}
			for _, part := range c.Patterns {
				addPatternVars(part, scope)
			}
		case *cypher.UnwindClause:
			check(c.Expr, scope)
			scope[c.Alias] = true
		case *cypher.SetClause:
			for _, it := range c.Items {
				if !scope[it.Target] {
					p.Reportf(cypher.Span{}, "variable `%s` is not defined in this scope", it.Target)
				}
				check(it.Value, scope)
			}
		case *cypher.DeleteClause:
			for _, e := range c.Exprs {
				check(e, scope)
			}
		case *cypher.WithClause:
			newScope := checkProj(&c.Projection, scope)
			check(c.Where, newScope)
			scope = newScope
		case *cypher.ReturnClause:
			scope = checkProj(&c.Projection, scope)
		}
	}
}

func addPatternVars(part *cypher.PatternPart, into map[string]bool) {
	for _, n := range part.Nodes {
		if n.Var != "" {
			into[n.Var] = true
		}
	}
	for _, r := range part.Rels {
		if r.Var != "" {
			into[r.Var] = true
		}
	}
}

func patternPropExprs(part *cypher.PatternPart) []cypher.Expr {
	var out []cypher.Expr
	for _, n := range part.Nodes {
		for _, k := range sortedProps(n.Props) {
			out = append(out, n.Props[k])
		}
	}
	for _, r := range part.Rels {
		for _, k := range sortedProps(r.Props) {
			out = append(out, r.Props[k])
		}
	}
	return out
}

// runUnusedVar flags pattern variables that are bound and then never
// referenced — common in LLM output (and in the reference queries' own
// `count(*)` shapes), so it reports at Info severity only.
func runUnusedVar(p *Pass) {
	star := false
	for _, cl := range p.Query.Clauses {
		switch c := cl.(type) {
		case *cypher.WithClause:
			star = star || c.Star
		case *cypher.ReturnClause:
			star = star || c.Star
		}
	}
	if star {
		return // WITH * / RETURN * uses everything
	}

	type binding struct {
		span cypher.Span
		kind string
		n    int // occurrences across pattern elements
	}
	bound := map[string]*binding{}
	cypher.ForEachPattern(p.Query, func(part *cypher.PatternPart) {
		for _, n := range part.Nodes {
			if n.Var == "" {
				continue
			}
			if b := bound[n.Var]; b != nil {
				b.n++
			} else {
				bound[n.Var] = &binding{span: n.Span, kind: "node", n: 1}
			}
		}
		for _, r := range part.Rels {
			if r.Var == "" {
				continue
			}
			if b := bound[r.Var]; b != nil {
				b.n++
			} else {
				bound[r.Var] = &binding{span: r.Span, kind: "relationship", n: 1}
			}
		}
	})

	used := map[string]bool{}
	cypher.WalkExprs(p.Query, func(e cypher.Expr) {
		if v, ok := e.(*cypher.Variable); ok {
			used[v.Name] = true
		}
	})
	for _, cl := range p.Query.Clauses {
		if s, ok := cl.(*cypher.SetClause); ok {
			for _, it := range s.Items {
				used[it.Target] = true
			}
		}
	}

	for _, name := range sortedBindingNames(bound) {
		b := bound[name]
		if b.n > 1 || used[name] {
			continue // repeated in patterns = a join; referenced = used
		}
		p.Reportf(b.span, "%s variable `%s` is bound but never used", b.kind, name)
	}
}

func sortedBindingNames[T any](m map[string]T) []string {
	set := make(map[string]bool, len(m))
	for k := range m {
		set[k] = true
	}
	return sortedKeys(set)
}

func runUnknownFunc(p *Pass) {
	known := cypher.BuiltinFunctionNames()
	cypher.WalkExprs(p.Query, func(e cypher.Expr) {
		fc, ok := e.(*cypher.FuncCall)
		if !ok || cypher.KnownFunction(fc.Name) {
			return
		}
		msg := fmt.Sprintf("unknown function %s()", fc.Name)
		var fix *SuggestedFix
		if s := didYouMean(fc.Name, known); s != "" {
			msg += fmt.Sprintf(" (did you mean %s()?)", s)
			if !fc.NameSpan.IsZero() && p.Src != "" {
				fix = &SuggestedFix{
					Message: fmt.Sprintf("replace with %s", s),
					Edits:   []TextEdit{{Span: fc.NameSpan, NewText: s}},
				}
			}
		}
		p.ReportFix(fc.NameSpan, msg, fix)
	})
}

// runAggMix enforces where aggregate functions may appear. The executor
// only computes aggregates for WITH/RETURN item expressions; anywhere else
// (WHERE, ORDER BY, UNWIND, SET, DELETE, pattern props, or nested inside
// another aggregate) the call falls through to "unknown function" at
// runtime.
func runAggMix(p *Pass) {
	var flagAggs func(e cypher.Expr, where string)
	flagAggs = func(e cypher.Expr, where string) {
		cypher.WalkExpr(e, func(sub cypher.Expr) {
			fc, ok := sub.(*cypher.FuncCall)
			if !ok || !cypher.IsAggregateFunc(fc.Name) {
				return
			}
			p.Reportf(fc.NameSpan, "aggregate function %s() is not allowed in %s", fc.Name, where)
		})
	}
	// checkItem handles a projection item: nested aggregates are errors;
	// aggregates mixed with bare values in one expression evaluate the bare
	// part against an arbitrary row of the group, so warn.
	checkItem := func(it *cypher.ReturnItem) {
		if !cypher.ContainsAggregate(it.Expr) {
			return
		}
		bare := false
		var walk func(e cypher.Expr, inAgg bool)
		walk = func(e cypher.Expr, inAgg bool) {
			switch x := e.(type) {
			case nil:
				return
			case *cypher.FuncCall:
				if cypher.IsAggregateFunc(x.Name) {
					if inAgg {
						p.Reportf(x.NameSpan, "aggregate function %s() cannot be nested inside another aggregate", x.Name)
					}
					for _, a := range x.Args {
						walk(a, true)
					}
					return
				}
				for _, a := range x.Args {
					walk(a, inAgg)
				}
			case *cypher.Variable:
				if !inAgg {
					bare = true
				}
			case *cypher.PropAccess:
				if !inAgg {
					bare = true
				}
				walk(x.Target, true) // don't double-count the base variable
			case *cypher.Binary:
				walk(x.L, inAgg)
				walk(x.R, inAgg)
			case *cypher.Not:
				walk(x.E, inAgg)
			case *cypher.Neg:
				walk(x.E, inAgg)
			case *cypher.IsNull:
				walk(x.E, inAgg)
			case *cypher.HasLabels:
				walk(x.E, inAgg)
			case *cypher.Index:
				walk(x.Target, inAgg)
				walk(x.Sub, inAgg)
			case *cypher.ListLit:
				for _, el := range x.Elems {
					walk(el, inAgg)
				}
			case *cypher.CaseExpr:
				walk(x.Operand, inAgg)
				for i := range x.Whens {
					walk(x.Whens[i], inAgg)
					walk(x.Thens[i], inAgg)
				}
				walk(x.Else, inAgg)
			}
		}
		walk(it.Expr, false)
		if bare {
			p.ReportSeverity(Warning, opSpanOf(it.Expr),
				"expression mixes an aggregate with non-aggregated values; they are taken from an arbitrary row of each group", nil)
		}
	}
	checkProj := func(proj *cypher.Projection) {
		for _, it := range proj.Items {
			checkItem(it)
		}
		for _, s := range proj.OrderBy {
			flagAggs(s.Expr, "ORDER BY")
		}
		flagAggs(proj.Skip, "SKIP")
		flagAggs(proj.Limit, "LIMIT")
	}
	for _, cl := range p.Query.Clauses {
		switch c := cl.(type) {
		case *cypher.MatchClause:
			check := func(part *cypher.PatternPart) {
				for _, e := range patternPropExprs(part) {
					flagAggs(e, "a pattern property")
				}
			}
			for _, part := range c.Patterns {
				check(part)
			}
			flagAggs(c.Where, "WHERE")
		case *cypher.CreateClause:
			for _, part := range c.Patterns {
				for _, e := range patternPropExprs(part) {
					flagAggs(e, "a pattern property")
				}
			}
		case *cypher.UnwindClause:
			flagAggs(c.Expr, "UNWIND")
		case *cypher.SetClause:
			for _, it := range c.Items {
				flagAggs(it.Value, "SET")
			}
		case *cypher.DeleteClause:
			for _, e := range c.Exprs {
				flagAggs(e, "DELETE")
			}
		case *cypher.WithClause:
			checkProj(&c.Projection)
			flagAggs(c.Where, "WHERE after WITH")
		case *cypher.ReturnClause:
			checkProj(&c.Projection)
		}
	}
}

// opSpanOf finds a representative span inside an expression for reporting.
func opSpanOf(e cypher.Expr) cypher.Span {
	var span cypher.Span
	cypher.WalkExpr(e, func(sub cypher.Expr) {
		if !span.IsZero() {
			return
		}
		switch x := sub.(type) {
		case *cypher.Binary:
			span = x.OpSpan
		case *cypher.Variable:
			span = x.Span
		case *cypher.PropAccess:
			span = x.KeySpan
		case *cypher.FuncCall:
			span = x.NameSpan
		}
	})
	return span
}
