package lint

import (
	"fmt"
	"sort"

	"github.com/graphrules/graphrules/internal/cypher"
)

// The schema-aware analyzers check the query against the extracted graph
// schema. They all no-op when the pass has no schema.

func init() {
	Register(&Analyzer{
		Name:     "unknownlabel",
		Doc:      "node label not present in the graph schema",
		Severity: Error,
		Run:      runUnknownLabel,
	})
	Register(&Analyzer{
		Name:     "unknownreltype",
		Doc:      "relationship type not present in the graph schema",
		Severity: Error,
		Run:      runUnknownRelType,
	})
	Register(&Analyzer{
		Name:     "unknownprop",
		Doc:      "property key never observed on the variable's bound labels (the paper's hallucinated-property category)",
		Severity: Error,
		Run:      runUnknownProp,
	})
	Register(&Analyzer{
		Name:     "reldirection",
		Doc:      "directed relationship contradicts the schema's dominant direction for its type (the paper's direction-error category)",
		Severity: Error,
		Run:      runRelDirection,
	})
}

func runUnknownLabel(p *Pass) {
	if p.Schema == nil {
		return
	}
	known := p.Schema.NodeLabelNames()
	report := func(label string, span cypher.Span) {
		msg := fmt.Sprintf("unknown node label :%s", label)
		var fix *SuggestedFix
		if s := didYouMean(label, known); s != "" {
			msg += fmt.Sprintf(" (did you mean :%s?)", s)
			if !span.IsZero() && p.Src != "" {
				fix = &SuggestedFix{
					Message: fmt.Sprintf("replace with :%s", s),
					Edits:   []TextEdit{{Span: span, NewText: s}},
				}
			}
		}
		p.ReportFix(span, msg, fix)
	}
	cypher.ForEachPattern(p.Query, func(part *cypher.PatternPart) {
		for _, n := range part.Nodes {
			for i, l := range n.Labels {
				if p.Schema.NodeLabels[l] == nil {
					span := n.Span
					if i < len(n.LabelSpans) {
						span = n.LabelSpans[i]
					}
					report(l, span)
				}
			}
		}
	})
	cypher.WalkExprs(p.Query, func(e cypher.Expr) {
		hl, ok := e.(*cypher.HasLabels)
		if !ok {
			return
		}
		span := cypher.Span{}
		if v, okv := hl.E.(*cypher.Variable); okv {
			span = v.Span
		}
		for _, l := range hl.Labels {
			if p.Schema.NodeLabels[l] == nil {
				msg := fmt.Sprintf("unknown node label :%s", l)
				if s := didYouMean(l, known); s != "" {
					msg += fmt.Sprintf(" (did you mean :%s?)", s)
				}
				p.Report(span, msg)
			}
		}
	})
}

func runUnknownRelType(p *Pass) {
	if p.Schema == nil {
		return
	}
	known := p.Schema.EdgeLabelNames()
	cypher.ForEachPattern(p.Query, func(part *cypher.PatternPart) {
		for _, r := range part.Rels {
			for i, t := range r.Types {
				if p.Schema.EdgeLabels[t] != nil {
					continue
				}
				span := r.Span
				if i < len(r.TypeSpans) {
					span = r.TypeSpans[i]
				}
				msg := fmt.Sprintf("unknown relationship type :%s", t)
				var fix *SuggestedFix
				if s := didYouMean(t, known); s != "" {
					msg += fmt.Sprintf(" (did you mean :%s?)", s)
					if !span.IsZero() && p.Src != "" {
						fix = &SuggestedFix{
							Message: fmt.Sprintf("replace with :%s", s),
							Edits:   []TextEdit{{Span: span, NewText: s}},
						}
					}
				}
				p.ReportFix(span, msg, fix)
			}
		}
	})
}

func runUnknownProp(p *Pass) {
	if p.Schema == nil {
		return
	}
	sc := p.scopes()

	// knownKeysFor unions the property keys the schema has seen on the
	// given labels, for suggestions (lookup uses the selector so node and
	// edge namespaces stay separate).
	knownNodeKeys := func(labels []string) []string {
		set := map[string]bool{}
		for _, l := range labels {
			if ls := p.Schema.NodeLabels[l]; ls != nil {
				for k := range ls.Props {
					set[k] = true
				}
			}
		}
		return sortedKeys(set)
	}
	knownEdgeKeys := func(types []string) []string {
		set := map[string]bool{}
		for _, t := range types {
			if es := p.Schema.EdgeLabels[t]; es != nil {
				for k := range es.Props {
					set[k] = true
				}
			}
		}
		return sortedKeys(set)
	}

	report := func(span cypher.Span, key, owner string, candidates []string) {
		msg := fmt.Sprintf("property %q never observed on %s", key, owner)
		var fix *SuggestedFix
		if s := didYouMean(key, candidates); s != "" {
			msg += fmt.Sprintf(" (did you mean %q?)", s)
			if !span.IsZero() && p.Src != "" {
				fix = &SuggestedFix{
					Message: fmt.Sprintf("replace with %q", s),
					Edits:   []TextEdit{{Span: span, NewText: s}},
				}
			}
		}
		p.ReportFix(span, msg, fix)
	}

	// Property accesses v.key with label-constrained v — the same rule the
	// §4.4 classifier applies: any bound label lacking the key fires.
	cypher.WalkExprs(p.Query, func(e cypher.Expr) {
		pa, ok := e.(*cypher.PropAccess)
		if !ok {
			return
		}
		v, ok := pa.Target.(*cypher.Variable)
		if !ok {
			return
		}
		if labels := sc.nodeLabels[v.Name]; len(labels) > 0 {
			for _, l := range labels {
				if !p.Schema.HasNodeProp(l, pa.Key) {
					report(pa.KeySpan, pa.Key, "node label :"+l, knownNodeKeys(labels))
					break
				}
			}
		}
		if types := sc.edgeTypes[v.Name]; len(types) > 0 {
			for _, t := range types {
				if !p.Schema.HasEdgeProp(t, pa.Key) {
					report(pa.KeySpan, pa.Key, "relationship type :"+t, knownEdgeKeys(types))
					break
				}
			}
		}
	})

	// Inline pattern property maps: (n:Label {key: ...}) / -[r:TYPE {key: ...}]-.
	cypher.ForEachPattern(p.Query, func(part *cypher.PatternPart) {
		for _, n := range part.Nodes {
			if len(n.Labels) == 0 {
				continue
			}
			for _, key := range sortedProps(n.Props) {
				for _, l := range n.Labels {
					if !p.Schema.HasNodeProp(l, key) {
						report(n.Span, key, "node label :"+l, knownNodeKeys(n.Labels))
						break
					}
				}
			}
		}
		for _, r := range part.Rels {
			if len(r.Types) != 1 {
				continue
			}
			for _, key := range sortedProps(r.Props) {
				if !p.Schema.HasEdgeProp(r.Types[0], key) {
					report(r.Span, key, "relationship type :"+r.Types[0], knownEdgeKeys(r.Types))
				}
			}
		}
	})
}

func runRelDirection(p *Pass) {
	if p.Schema == nil {
		return
	}
	sc := p.scopes()
	labelOf := func(np *cypher.NodePattern) string {
		if len(np.Labels) > 0 {
			return np.Labels[0]
		}
		if np.Var != "" {
			if ls := sc.nodeLabels[np.Var]; len(ls) > 0 {
				return ls[0]
			}
		}
		return ""
	}
	cypher.ForEachPattern(p.Query, func(part *cypher.PatternPart) {
		for i, rel := range part.Rels {
			if rel.Direction == cypher.DirBoth || len(rel.Types) != 1 {
				continue
			}
			es := p.Schema.EdgeLabels[rel.Types[0]]
			if es == nil {
				continue
			}
			domFrom, domTo := es.DominantEndpoints()
			if domFrom == "" || domFrom == domTo {
				continue
			}
			left, right := labelOf(part.Nodes[i]), labelOf(part.Nodes[i+1])
			var from, to string
			if rel.Direction == cypher.DirOut {
				from, to = left, right
			} else {
				from, to = right, left
			}
			// A direction error reads the relationship backwards: the
			// pattern's source sits where the schema's target belongs.
			if from != domTo || to != domFrom {
				continue
			}
			msg := fmt.Sprintf("relationship :%s points (:%s)->(:%s) but the schema records (:%s)-[:%s]->(:%s)",
				rel.Types[0], from, to, domFrom, rel.Types[0], domTo)
			p.ReportFix(rel.Span, msg, flipArrowFix(p.Src, rel))
		}
	})
}

// flipArrowFix builds the edits that reverse a directed relationship
// pattern in the source text: -[..]-> becomes <-[..]- and vice versa.
func flipArrowFix(src string, rel *cypher.RelPattern) *SuggestedFix {
	if src == "" || rel.Span.IsZero() || rel.Span.End > len(src) {
		return nil
	}
	switch rel.Direction {
	case cypher.DirOut: // -[..]->  =>  <-[..]-
		if src[rel.Span.End-1] != '>' {
			return nil
		}
		return &SuggestedFix{
			Message: "reverse the relationship direction",
			Edits: []TextEdit{
				{Span: cypher.Span{Start: rel.Span.Start, End: rel.Span.Start}, NewText: "<"},
				{Span: cypher.Span{Start: rel.Span.End - 1, End: rel.Span.End}, NewText: ""},
			},
		}
	case cypher.DirIn: // <-[..]-  =>  -[..]->
		if src[rel.Span.Start] != '<' {
			return nil
		}
		return &SuggestedFix{
			Message: "reverse the relationship direction",
			Edits: []TextEdit{
				{Span: cypher.Span{Start: rel.Span.Start, End: rel.Span.Start + 1}, NewText: ""},
				{Span: cypher.Span{Start: rel.Span.End, End: rel.Span.End}, NewText: ">"},
			},
		}
	}
	return nil
}

func sortedKeys(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sortedProps(props map[string]cypher.Expr) []string {
	out := make([]string, 0, len(props))
	for k := range props {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
