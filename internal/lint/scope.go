package lint

import (
	"github.com/graphrules/graphrules/internal/cypher"
)

// varKind classifies what a bound name refers to, for kind-sensitive checks.
type varKind uint8

const (
	kindValue varKind = iota // projection alias, UNWIND element
	kindNode
	kindRel
)

// scopeInfo is the shared binding analysis computed once per query and
// reused by the schema-aware analyzers. It mirrors the §4.4 classifier's
// bindingLabels: label constraints come from pattern elements plus
// top-level AND-ed label predicates in WHERE clauses; an edge variable's
// type is only recorded when the pattern names exactly one type.
type scopeInfo struct {
	nodeLabels map[string][]string
	edgeTypes  map[string][]string
	kinds      map[string]varKind
}

// scopes returns the lazily computed binding info for the pass's query.
func (p *Pass) scopes() *scopeInfo {
	if p.scope != nil {
		return p.scope
	}
	s := &scopeInfo{
		nodeLabels: map[string][]string{},
		edgeTypes:  map[string][]string{},
		kinds:      map[string]varKind{},
	}
	cypher.ForEachPattern(p.Query, func(part *cypher.PatternPart) {
		for _, n := range part.Nodes {
			if n.Var == "" {
				continue
			}
			s.kinds[n.Var] = kindNode
			if len(n.Labels) > 0 {
				s.nodeLabels[n.Var] = append(s.nodeLabels[n.Var], n.Labels...)
			}
		}
		for _, r := range part.Rels {
			if r.Var == "" {
				continue
			}
			s.kinds[r.Var] = kindRel
			if len(r.Types) == 1 {
				s.edgeTypes[r.Var] = append(s.edgeTypes[r.Var], r.Types[0])
			}
		}
	})
	for _, cl := range p.Query.Clauses {
		var where cypher.Expr
		switch c := cl.(type) {
		case *cypher.MatchClause:
			where = c.Where
		case *cypher.WithClause:
			where = c.Where
		}
		collectLabelPreds(where, s.nodeLabels)
	}
	p.scope = s
	return s
}

// collectLabelPreds records `v:Label` constraints from top-level AND-ed
// predicates.
func collectLabelPreds(e cypher.Expr, into map[string][]string) {
	switch x := e.(type) {
	case nil:
		return
	case *cypher.Binary:
		if x.Op == cypher.OpAnd {
			collectLabelPreds(x.L, into)
			collectLabelPreds(x.R, into)
		}
	case *cypher.HasLabels:
		if v, ok := x.E.(*cypher.Variable); ok {
			into[v.Name] = append(into[v.Name], x.Labels...)
		}
	}
}

// conjuncts splits a boolean expression on top-level ANDs.
func conjuncts(e cypher.Expr, out *[]cypher.Expr) {
	if b, ok := e.(*cypher.Binary); ok && b.Op == cypher.OpAnd {
		conjuncts(b.L, out)
		conjuncts(b.R, out)
		return
	}
	if e != nil {
		*out = append(*out, e)
	}
}
