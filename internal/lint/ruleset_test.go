package lint

import (
	"strings"
	"testing"
)

func TestNormalizeQuery(t *testing.T) {
	cases := []struct {
		a, b string
		same bool
	}{
		{
			"MATCH (x:Person) RETURN count(*) AS n",
			"MATCH (p:Person) RETURN count(*) AS cnt",
			true,
		},
		{
			"MATCH (a:Person)-[r:KNOWS]->(b:Person) WHERE a.age > 30 RETURN count(*) AS n",
			"MATCH (p:Person)-[k:KNOWS]->(q:Person) WHERE p.age > 30 RETURN count(*) AS m",
			true,
		},
		{
			// Same shape, different label: not a duplicate.
			"MATCH (x:Person) RETURN count(*) AS n",
			"MATCH (x:Team) RETURN count(*) AS n",
			false,
		},
		{
			// Predicate on a different variable: not a duplicate.
			"MATCH (a:P)-[:R]->(b:P) WHERE a.k = 1 RETURN count(*) AS n",
			"MATCH (a:P)-[:R]->(b:P) WHERE b.k = 1 RETURN count(*) AS n",
			false,
		},
		{
			// WITH pipeline renames consistently across clauses.
			"MATCH (x:P) WITH x.k AS v, count(*) AS c WHERE c = 1 RETURN count(*) AS n",
			"MATCH (y:P) WITH y.k AS val, count(*) AS num WHERE num = 1 RETURN count(*) AS n",
			true,
		},
	}
	for _, tc := range cases {
		na, ok := NormalizeQuery(tc.a)
		if !ok {
			t.Fatalf("NormalizeQuery(%q) failed", tc.a)
		}
		nb, ok := NormalizeQuery(tc.b)
		if !ok {
			t.Fatalf("NormalizeQuery(%q) failed", tc.b)
		}
		if (na == nb) != tc.same {
			t.Errorf("normalize equality = %v, want %v\n  a: %q -> %q\n  b: %q -> %q",
				na == nb, tc.same, tc.a, na, tc.b, nb)
		}
	}
}

func TestNormalizeQueryRejects(t *testing.T) {
	for _, src := range []string{
		"",
		"MATCH (p:Person RETURN p", // syntax error
		"CREATE (p:Person {id: 1}) RETURN count(*)", // mutation clause
	} {
		if norm, ok := NormalizeQuery(src); ok {
			t.Errorf("NormalizeQuery(%q) = %q, want not-ok", src, norm)
		}
	}
}

func TestRuleSetDuplicates(t *testing.T) {
	entries := []RuleSetEntry{
		{Name: "each Person has a name",
			Support: "MATCH (x:Person) WHERE x.name IS NOT NULL RETURN count(*) AS n",
			Body:    "MATCH (x:Person) RETURN count(*) AS n",
			Head:    "MATCH (x:Person) RETURN count(*) AS n"},
		{Name: "Team names are unique",
			Support: "MATCH (t:Team) WHERE t.name IS NOT NULL WITH t.name AS v, count(*) AS c WHERE c = 1 RETURN count(*) AS n",
			Body:    "MATCH (t:Team) WHERE t.name IS NOT NULL RETURN count(*) AS n",
			Head:    "MATCH (t:Team) RETURN count(*) AS n"},
		{Name: "every Person carries a name", // same pattern as #0, renamed
			Support: "MATCH (p:Person) WHERE p.name IS NOT NULL RETURN count(*) AS total",
			Body:    "MATCH (p:Person) RETURN count(*) AS total",
			Head:    "MATCH (q:Person) RETURN count(*) AS total"},
		{Name: "broken",
			Support: "MATCH (p:Person) WHERE p.name IS NOT NULL RETURN count(*) AS n",
			Body:    "MATCH (p:Person RETURN p",
			Head:    "MATCH (p:Person) RETURN count(*) AS n"},
		{Name: "each Person has a dob", // same body/head as #0, different support
			Support: "MATCH (x:Person) WHERE x.dob IS NOT NULL RETURN count(*) AS n",
			Body:    "MATCH (x:Person) RETURN count(*) AS n",
			Head:    "MATCH (x:Person) RETURN count(*) AS n"},
	}
	got := RuleSetDuplicates(entries)
	if len(got) != 1 {
		t.Fatalf("RuleSetDuplicates = %d findings, want 1: %+v", len(got), got)
	}
	f := got[0]
	if f.Index != 2 || f.Of != 0 {
		t.Errorf("finding indexes = (%d, %d), want (2, 0)", f.Index, f.Of)
	}
	if f.Diag.Analyzer != RuleSetAnalyzer || f.Diag.Severity != Warning {
		t.Errorf("diag meta = %s/%s, want %s/%s", f.Diag.Analyzer, f.Diag.Severity, RuleSetAnalyzer, Warning)
	}
	if !strings.Contains(f.Diag.Message, "each Person has a name") ||
		!strings.Contains(f.Diag.Message, "every Person carries a name") {
		t.Errorf("message does not name both rules: %q", f.Diag.Message)
	}
}

func TestRuleSetDuplicatesPartialMatchIsNotDup(t *testing.T) {
	support := "MATCH (x:P) WHERE x.k IS NOT NULL RETURN count(*) AS n"
	entries := []RuleSetEntry{
		{Support: support,
			Body: "MATCH (x:P) RETURN count(*) AS n", Head: "MATCH (x:P) RETURN count(*) AS n"},
		{Support: support,
			Body: "MATCH (x:P) RETURN count(*) AS n", Head: "MATCH (x:Q) RETURN count(*) AS n"},
	}
	if got := RuleSetDuplicates(entries); len(got) != 0 {
		t.Fatalf("same support/body but different head flagged as duplicate: %+v", got)
	}
}

func TestRuleSetSupportContainment(t *testing.T) {
	count := " RETURN count(*) AS n"
	cases := []struct {
		name          string
		support, body string
		flag          bool
	}{
		{"identical pattern plus WHERE",
			"MATCH (x:Person) WHERE x.name IS NOT NULL" + count,
			"MATCH (x:Person)" + count, false},
		{"renamed variable still contains",
			"MATCH (p:Person) WHERE p.name IS NOT NULL" + count,
			"MATCH (x:Person)" + count, false},
		{"anonymous body part covered by named support part",
			"MATCH (a:Person)-[r:KNOWS]->(b:Person) WHERE r.since > 2020" + count,
			"MATCH (:Person)-[:KNOWS]->(:Person)" + count, false},
		{"support measures a different label",
			"MATCH (t:Team) WHERE t.name IS NOT NULL" + count,
			"MATCH (x:Person)" + count, true},
		{"support drops the body's edge pattern",
			"MATCH (a:Person)" + count,
			"MATCH (a:Person)-[:KNOWS]->(b:Person)" + count, true},
		{"self-loop body not covered by two-endpoint support",
			"MATCH (a:P)-[:T]->(b:P)" + count,
			"MATCH (a:P)-[:T]->(a)" + count, true},
		{"multi-part body fully covered",
			"MATCH (a:P), (b:Q) WHERE a.k = b.k" + count,
			"MATCH (a:P), (b:Q)" + count, false},
		{"two identical body parts need two support parts",
			"MATCH (a:P)" + count,
			"MATCH (a:P), (b:P)" + count, true},
		{"unparseable body is skipped",
			"MATCH (a:P)" + count,
			"MATCH (a:P" + count, false},
	}
	for _, tc := range cases {
		entries := []RuleSetEntry{{Name: tc.name, Support: tc.support, Body: tc.body, Head: tc.body}}
		got := RuleSetSupportContainment(entries)
		if flagged := len(got) > 0; flagged != tc.flag {
			t.Errorf("%s: flagged=%v, want %v (findings %+v)", tc.name, flagged, tc.flag, got)
			continue
		}
		if tc.flag {
			f := got[0]
			if f.Index != 0 || f.Diag.Analyzer != RuleSetSupportAnalyzer || f.Diag.Severity != Warning {
				t.Errorf("%s: finding meta = %+v, want index 0 %s/%s", tc.name, f, RuleSetSupportAnalyzer, Warning)
			}
			if !strings.Contains(f.Diag.Message, "support query does not contain") {
				t.Errorf("%s: message %q", tc.name, f.Diag.Message)
			}
		}
	}
}

func TestRuleSetVarAgreement(t *testing.T) {
	count := " RETURN count(*) AS n"
	cases := []struct {
		name       string
		body, head string
		flag       bool
	}{
		{"same names", "MATCH (x:Person)" + count, "MATCH (x:Person)" + count, false},
		{"renamed variable", "MATCH (x:Person)" + count, "MATCH (y:Person)" + count, true},
		{"formatting only", "MATCH (x:Person)  RETURN   count(*) AS n", "MATCH (x:Person)" + count, false},
		{"different patterns", "MATCH (x:Person)" + count, "MATCH (x:Team)" + count, false},
		{"edge pattern renamed",
			"MATCH (a:P)-[r:T]->(b:Q)" + count,
			"MATCH (p:P)-[e:T]->(q:Q)" + count, true},
		{"unparseable head skipped", "MATCH (x:P)" + count, "MATCH (x:P" + count, false},
	}
	for _, tc := range cases {
		entries := []RuleSetEntry{{Name: tc.name, Support: tc.body, Body: tc.body, Head: tc.head}}
		got := RuleSetVarAgreement(entries)
		if flagged := len(got) > 0; flagged != tc.flag {
			t.Errorf("%s: flagged=%v, want %v (findings %+v)", tc.name, flagged, tc.flag, got)
			continue
		}
		if tc.flag {
			f := got[0]
			if f.Diag.Analyzer != RuleSetVarsAnalyzer || f.Diag.Severity != Warning {
				t.Errorf("%s: finding meta = %+v", tc.name, f)
			}
			if !strings.Contains(f.Diag.Message, "disagree on variable naming") {
				t.Errorf("%s: message %q", tc.name, f.Diag.Message)
			}
		}
	}
}

// RuleSetLint must aggregate all three passes over one entry list.
func TestRuleSetLintAggregates(t *testing.T) {
	count := " RETURN count(*) AS n"
	entries := []RuleSetEntry{
		{Name: "base",
			Support: "MATCH (x:Person) WHERE x.name IS NOT NULL" + count,
			Body:    "MATCH (x:Person)" + count,
			Head:    "MATCH (x:Person)" + count},
		{Name: "duplicate of base",
			Support: "MATCH (p:Person) WHERE p.name IS NOT NULL" + count,
			Body:    "MATCH (p:Person)" + count,
			Head:    "MATCH (p:Person)" + count},
		{Name: "support on wrong label",
			Support: "MATCH (t:Team) WHERE t.name IS NOT NULL" + count,
			Body:    "MATCH (x:Person)" + count,
			Head:    "MATCH (x:Person)" + count},
		{Name: "head renames body vars",
			Support: "MATCH (x:City) WHERE x.name IS NOT NULL" + count,
			Body:    "MATCH (x:City)" + count,
			Head:    "MATCH (y:City)" + count},
	}
	byAnalyzer := map[string]int{}
	for _, f := range RuleSetLint(entries) {
		byAnalyzer[f.Diag.Analyzer]++
	}
	want := map[string]int{RuleSetAnalyzer: 1, RuleSetSupportAnalyzer: 1, RuleSetVarsAnalyzer: 1}
	for a, n := range want {
		if byAnalyzer[a] != n {
			t.Errorf("RuleSetLint: %d findings for %s, want %d (all: %v)", byAnalyzer[a], a, n, byAnalyzer)
		}
	}
}
