package lint

import (
	"strings"
	"testing"
)

func TestNormalizeQuery(t *testing.T) {
	cases := []struct {
		a, b string
		same bool
	}{
		{
			"MATCH (x:Person) RETURN count(*) AS n",
			"MATCH (p:Person) RETURN count(*) AS cnt",
			true,
		},
		{
			"MATCH (a:Person)-[r:KNOWS]->(b:Person) WHERE a.age > 30 RETURN count(*) AS n",
			"MATCH (p:Person)-[k:KNOWS]->(q:Person) WHERE p.age > 30 RETURN count(*) AS m",
			true,
		},
		{
			// Same shape, different label: not a duplicate.
			"MATCH (x:Person) RETURN count(*) AS n",
			"MATCH (x:Team) RETURN count(*) AS n",
			false,
		},
		{
			// Predicate on a different variable: not a duplicate.
			"MATCH (a:P)-[:R]->(b:P) WHERE a.k = 1 RETURN count(*) AS n",
			"MATCH (a:P)-[:R]->(b:P) WHERE b.k = 1 RETURN count(*) AS n",
			false,
		},
		{
			// WITH pipeline renames consistently across clauses.
			"MATCH (x:P) WITH x.k AS v, count(*) AS c WHERE c = 1 RETURN count(*) AS n",
			"MATCH (y:P) WITH y.k AS val, count(*) AS num WHERE num = 1 RETURN count(*) AS n",
			true,
		},
	}
	for _, tc := range cases {
		na, ok := NormalizeQuery(tc.a)
		if !ok {
			t.Fatalf("NormalizeQuery(%q) failed", tc.a)
		}
		nb, ok := NormalizeQuery(tc.b)
		if !ok {
			t.Fatalf("NormalizeQuery(%q) failed", tc.b)
		}
		if (na == nb) != tc.same {
			t.Errorf("normalize equality = %v, want %v\n  a: %q -> %q\n  b: %q -> %q",
				na == nb, tc.same, tc.a, na, tc.b, nb)
		}
	}
}

func TestNormalizeQueryRejects(t *testing.T) {
	for _, src := range []string{
		"",
		"MATCH (p:Person RETURN p", // syntax error
		"CREATE (p:Person {id: 1}) RETURN count(*)", // mutation clause
	} {
		if norm, ok := NormalizeQuery(src); ok {
			t.Errorf("NormalizeQuery(%q) = %q, want not-ok", src, norm)
		}
	}
}

func TestRuleSetDuplicates(t *testing.T) {
	entries := []RuleSetEntry{
		{Name: "each Person has a name",
			Support: "MATCH (x:Person) WHERE x.name IS NOT NULL RETURN count(*) AS n",
			Body:    "MATCH (x:Person) RETURN count(*) AS n",
			Head:    "MATCH (x:Person) RETURN count(*) AS n"},
		{Name: "Team names are unique",
			Support: "MATCH (t:Team) WHERE t.name IS NOT NULL WITH t.name AS v, count(*) AS c WHERE c = 1 RETURN count(*) AS n",
			Body:    "MATCH (t:Team) WHERE t.name IS NOT NULL RETURN count(*) AS n",
			Head:    "MATCH (t:Team) RETURN count(*) AS n"},
		{Name: "every Person carries a name", // same pattern as #0, renamed
			Support: "MATCH (p:Person) WHERE p.name IS NOT NULL RETURN count(*) AS total",
			Body:    "MATCH (p:Person) RETURN count(*) AS total",
			Head:    "MATCH (q:Person) RETURN count(*) AS total"},
		{Name: "broken",
			Support: "MATCH (p:Person) WHERE p.name IS NOT NULL RETURN count(*) AS n",
			Body:    "MATCH (p:Person RETURN p",
			Head:    "MATCH (p:Person) RETURN count(*) AS n"},
		{Name: "each Person has a dob", // same body/head as #0, different support
			Support: "MATCH (x:Person) WHERE x.dob IS NOT NULL RETURN count(*) AS n",
			Body:    "MATCH (x:Person) RETURN count(*) AS n",
			Head:    "MATCH (x:Person) RETURN count(*) AS n"},
	}
	got := RuleSetDuplicates(entries)
	if len(got) != 1 {
		t.Fatalf("RuleSetDuplicates = %d findings, want 1: %+v", len(got), got)
	}
	f := got[0]
	if f.Index != 2 || f.Of != 0 {
		t.Errorf("finding indexes = (%d, %d), want (2, 0)", f.Index, f.Of)
	}
	if f.Diag.Analyzer != RuleSetAnalyzer || f.Diag.Severity != Warning {
		t.Errorf("diag meta = %s/%s, want %s/%s", f.Diag.Analyzer, f.Diag.Severity, RuleSetAnalyzer, Warning)
	}
	if !strings.Contains(f.Diag.Message, "each Person has a name") ||
		!strings.Contains(f.Diag.Message, "every Person carries a name") {
		t.Errorf("message does not name both rules: %q", f.Diag.Message)
	}
}

func TestRuleSetDuplicatesPartialMatchIsNotDup(t *testing.T) {
	support := "MATCH (x:P) WHERE x.k IS NOT NULL RETURN count(*) AS n"
	entries := []RuleSetEntry{
		{Support: support,
			Body: "MATCH (x:P) RETURN count(*) AS n", Head: "MATCH (x:P) RETURN count(*) AS n"},
		{Support: support,
			Body: "MATCH (x:P) RETURN count(*) AS n", Head: "MATCH (x:Q) RETURN count(*) AS n"},
	}
	if got := RuleSetDuplicates(entries); len(got) != 0 {
		t.Fatalf("same support/body but different head flagged as duplicate: %+v", got)
	}
}
