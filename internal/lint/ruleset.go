package lint

import (
	"fmt"

	"github.com/graphrules/graphrules/internal/cypher"
)

// This file implements the first cross-query lint pass: unlike the
// registered analyzers, which each examine one query in isolation, the
// "ruleset" pass looks across a whole mined rule set and flags rules that
// are duplicates of each other — their support, body and head queries are
// all identical up to variable renaming. Such pairs slip past the NL-level
// dedup (the natural-language statements differ) yet measure the same
// constraint twice and inflate the mined-rule count. All three queries
// participate in the key: many rule kinds share body/head shapes (every
// required-property rule on one label has the same body and head scan) and
// differ only in the support query's extra conjunct.

// RuleSetAnalyzer is the pseudo-analyzer name attached to cross-query
// duplicate findings. Like SyntaxAnalyzer it is not in the registry: it
// runs over a rule set, not a single query.
const RuleSetAnalyzer = "ruleset"

// RuleSetEntry is one rule's contribution to a cross-query lint pass.
type RuleSetEntry struct {
	Name    string // display identity, e.g. the rule's NL statement
	Support string // the premise ∧ conclusion query (QuerySet.Support)
	Body    string // the premise query (QuerySet.Body)
	Head    string // the head-domain query (QuerySet.HeadTotal)
}

// RuleSetFinding ties a duplicate diagnostic to the entries involved.
type RuleSetFinding struct {
	Index int // entry that duplicates an earlier one
	Of    int // index of the first occurrence
	Diag  Diagnostic
}

// RuleSetDuplicates reports every entry whose normalized support/body/head
// patterns all match an earlier entry's. Entries with an unparseable query
// are skipped: the per-query analyzers already report those.
func RuleSetDuplicates(entries []RuleSetEntry) []RuleSetFinding {
	first := map[string]int{}
	var out []RuleSetFinding
	for i, e := range entries {
		support, ok := NormalizeQuery(e.Support)
		if !ok {
			continue
		}
		body, ok := NormalizeQuery(e.Body)
		if !ok {
			continue
		}
		head, ok := NormalizeQuery(e.Head)
		if !ok {
			continue
		}
		key := support + "\x00" + body + "\x00" + head
		j, dup := first[key]
		if !dup {
			first[key] = i
			continue
		}
		out = append(out, RuleSetFinding{
			Index: i,
			Of:    j,
			Diag: Diagnostic{
				Analyzer: RuleSetAnalyzer,
				Severity: Warning,
				Message: fmt.Sprintf(
					"rule %s duplicates rule %s: same query patterns up to variable renaming",
					entryName(entries, i), entryName(entries, j)),
			},
		})
	}
	return out
}

func entryName(entries []RuleSetEntry, i int) string {
	if n := entries[i].Name; n != "" {
		return fmt.Sprintf("%q", n)
	}
	return fmt.Sprintf("#%d", i)
}

// NormalizeQuery renders src in a canonical alpha-renamed form: every
// variable (pattern variables, projection aliases, UNWIND aliases) is
// replaced by v1, v2, ... in first-appearance order and the query is
// re-rendered from its AST, so formatting, quoting and property-map order
// are canonical too. Two queries normalize equal iff they are the same
// pattern up to variable naming.
//
// ok is false when src does not parse or contains a clause outside the
// read-only subset (MATCH, WITH, RETURN, UNWIND) — mutation clauses carry
// effects the pure pattern comparison would misjudge.
func NormalizeQuery(src string) (norm string, ok bool) {
	q, err := cypher.Parse(src)
	if err != nil {
		return "", false
	}
	r := renamer{names: map[string]string{}}
	for _, cl := range q.Clauses {
		switch c := cl.(type) {
		case *cypher.MatchClause:
			for _, part := range c.Patterns {
				r.part(part)
			}
			r.expr(c.Where)
		case *cypher.WithClause:
			r.projection(&c.Projection)
			r.expr(c.Where)
		case *cypher.ReturnClause:
			r.projection(&c.Projection)
		case *cypher.UnwindClause:
			r.expr(c.Expr)
			c.Alias = r.rename(c.Alias)
		default:
			return "", false
		}
	}
	return q.String(), true
}

// renamer rewrites variable names in place on a freshly parsed AST.
type renamer struct {
	names map[string]string
}

func (r *renamer) rename(old string) string {
	if old == "" {
		return ""
	}
	if n, ok := r.names[old]; ok {
		return n
	}
	n := fmt.Sprintf("v%d", len(r.names)+1)
	r.names[old] = n
	return n
}

func (r *renamer) part(p *cypher.PatternPart) {
	for _, n := range p.Nodes {
		n.Var = r.rename(n.Var)
	}
	for _, rel := range p.Rels {
		rel.Var = r.rename(rel.Var)
	}
	cypher.WalkPatternExprs(p, r.exprFn)
}

func (r *renamer) expr(e cypher.Expr) { cypher.WalkExpr(e, r.exprFn) }

func (r *renamer) exprFn(e cypher.Expr) {
	switch x := e.(type) {
	case *cypher.Variable:
		x.Name = r.rename(x.Name)
	case *cypher.PatternPred:
		// WalkExpr already recurses into the pattern's property
		// expressions; only the element variables need renaming here.
		for _, n := range x.Pattern.Nodes {
			n.Var = r.rename(n.Var)
		}
		for _, rel := range x.Pattern.Rels {
			rel.Var = r.rename(rel.Var)
		}
	}
}

func (r *renamer) projection(p *cypher.Projection) {
	for _, it := range p.Items {
		r.expr(it.Expr)
		if it.Alias != "" {
			it.Alias = r.rename(it.Alias)
		}
	}
	for _, s := range p.OrderBy {
		r.expr(s.Expr)
	}
	r.expr(p.Skip)
	r.expr(p.Limit)
}
