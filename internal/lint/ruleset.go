package lint

import (
	"fmt"

	"github.com/graphrules/graphrules/internal/cypher"
)

// This file implements the cross-query lint passes: unlike the registered
// analyzers, which each examine one query in isolation, these passes look
// across a whole mined rule set (or within one rule's query triple):
//
//   - RuleSetDuplicates flags rules whose support, body and head queries
//     are all identical to an earlier rule's up to variable renaming. Such
//     pairs slip past the NL-level dedup (the natural-language statements
//     differ) yet measure the same constraint twice and inflate the
//     mined-rule count.
//   - RuleSetSupportContainment flags rules whose support query does not
//     syntactically contain the body's MATCH pattern: support is defined
//     as "body rows that also satisfy the conclusion", so a support query
//     matching a different pattern makes confidence = support/body compare
//     two unrelated domains.
//   - RuleSetVarAgreement flags rules whose head and body queries are the
//     same pattern up to variable renaming but spell the variables
//     differently — a tell that the generator lost track of its own
//     bindings between the two queries.
//
// RuleSetLint runs all three; mining censuses the findings by analyzer.

// RuleSetAnalyzer is the pseudo-analyzer name attached to cross-query
// duplicate findings. Like SyntaxAnalyzer it is not in the registry: it
// runs over a rule set, not a single query.
const RuleSetAnalyzer = "ruleset"

// RuleSetSupportAnalyzer is the pseudo-analyzer name for support/body
// pattern-containment findings.
const RuleSetSupportAnalyzer = "rulesetsupport"

// RuleSetVarsAnalyzer is the pseudo-analyzer name for head/body
// variable-naming disagreement findings.
const RuleSetVarsAnalyzer = "rulesetvars"

// RuleSetEntry is one rule's contribution to a cross-query lint pass.
type RuleSetEntry struct {
	Name    string // display identity, e.g. the rule's NL statement
	Support string // the premise ∧ conclusion query (QuerySet.Support)
	Body    string // the premise query (QuerySet.Body)
	Head    string // the head-domain query (QuerySet.HeadTotal)
}

// RuleSetFinding ties a cross-query diagnostic to the entries involved.
type RuleSetFinding struct {
	Index int // entry the finding is attached to
	Of    int // earlier entry involved (== Index for single-rule findings)
	Diag  Diagnostic
}

// RuleSetLint runs every cross-query pass over a mined rule set: duplicate
// detection, support/body pattern containment, and head/body variable
// naming agreement. Findings are grouped by pass, each pass in entry order.
func RuleSetLint(entries []RuleSetEntry) []RuleSetFinding {
	out := RuleSetDuplicates(entries)
	out = append(out, RuleSetSupportContainment(entries)...)
	out = append(out, RuleSetVarAgreement(entries)...)
	return out
}

// RuleSetDuplicates reports every entry whose normalized support/body/head
// patterns all match an earlier entry's. Entries with an unparseable query
// are skipped: the per-query analyzers already report those.
func RuleSetDuplicates(entries []RuleSetEntry) []RuleSetFinding {
	first := map[string]int{}
	var out []RuleSetFinding
	for i, e := range entries {
		support, ok := NormalizeQuery(e.Support)
		if !ok {
			continue
		}
		body, ok := NormalizeQuery(e.Body)
		if !ok {
			continue
		}
		head, ok := NormalizeQuery(e.Head)
		if !ok {
			continue
		}
		key := support + "\x00" + body + "\x00" + head
		j, dup := first[key]
		if !dup {
			first[key] = i
			continue
		}
		out = append(out, RuleSetFinding{
			Index: i,
			Of:    j,
			Diag: Diagnostic{
				Analyzer: RuleSetAnalyzer,
				Severity: Warning,
				Message: fmt.Sprintf(
					"rule %s duplicates rule %s: same query patterns up to variable renaming",
					entryName(entries, i), entryName(entries, j)),
			},
		})
	}
	return out
}

func entryName(entries []RuleSetEntry, i int) string {
	if n := entries[i].Name; n != "" {
		return fmt.Sprintf("%q", n)
	}
	return fmt.Sprintf("#%d", i)
}

// NormalizeQuery renders src in a canonical alpha-renamed form: every
// variable (pattern variables, projection aliases, UNWIND aliases) is
// replaced by v1, v2, ... in first-appearance order and the query is
// re-rendered from its AST, so formatting, quoting and property-map order
// are canonical too. Two queries normalize equal iff they are the same
// pattern up to variable naming.
//
// ok is false when src does not parse or contains a clause outside the
// read-only subset (MATCH, WITH, RETURN, UNWIND) — mutation clauses carry
// effects the pure pattern comparison would misjudge.
func NormalizeQuery(src string) (norm string, ok bool) {
	q, err := cypher.Parse(src)
	if err != nil {
		return "", false
	}
	r := renamer{names: map[string]string{}}
	for _, cl := range q.Clauses {
		switch c := cl.(type) {
		case *cypher.MatchClause:
			for _, part := range c.Patterns {
				r.part(part)
			}
			r.expr(c.Where)
		case *cypher.WithClause:
			r.projection(&c.Projection)
			r.expr(c.Where)
		case *cypher.ReturnClause:
			r.projection(&c.Projection)
		case *cypher.UnwindClause:
			r.expr(c.Expr)
			c.Alias = r.rename(c.Alias)
		default:
			return "", false
		}
	}
	return q.String(), true
}

// renamer rewrites variable names in place on a freshly parsed AST.
type renamer struct {
	names map[string]string
}

func (r *renamer) rename(old string) string {
	if old == "" {
		return ""
	}
	if n, ok := r.names[old]; ok {
		return n
	}
	n := fmt.Sprintf("v%d", len(r.names)+1)
	r.names[old] = n
	return n
}

func (r *renamer) part(p *cypher.PatternPart) {
	for _, n := range p.Nodes {
		n.Var = r.rename(n.Var)
	}
	for _, rel := range p.Rels {
		rel.Var = r.rename(rel.Var)
	}
	cypher.WalkPatternExprs(p, r.exprFn)
}

func (r *renamer) expr(e cypher.Expr) { cypher.WalkExpr(e, r.exprFn) }

func (r *renamer) exprFn(e cypher.Expr) {
	switch x := e.(type) {
	case *cypher.Variable:
		x.Name = r.rename(x.Name)
	case *cypher.PatternPred:
		// WalkExpr already recurses into the pattern's property
		// expressions; only the element variables need renaming here.
		for _, n := range x.Pattern.Nodes {
			n.Var = r.rename(n.Var)
		}
		for _, rel := range x.Pattern.Rels {
			rel.Var = r.rename(rel.Var)
		}
	}
}

func (r *renamer) projection(p *cypher.Projection) {
	for _, it := range p.Items {
		r.expr(it.Expr)
		if it.Alias != "" {
			it.Alias = r.rename(it.Alias)
		}
	}
	for _, s := range p.OrderBy {
		r.expr(s.Expr)
	}
	r.expr(p.Skip)
	r.expr(p.Limit)
}

// RuleSetSupportContainment reports every entry whose support query does
// not syntactically contain the body's MATCH pattern. Containment is
// checked part by part: each pattern part of the body, rendered in its
// per-part canonical shape, must occur among the support query's parts (as
// a multiset, so a support part can cover only one body part). Entries
// whose support or body does not parse are skipped: the per-query
// analyzers already report those.
func RuleSetSupportContainment(entries []RuleSetEntry) []RuleSetFinding {
	var out []RuleSetFinding
	for i, e := range entries {
		missing, ok := supportMissingShape(e.Support, e.Body)
		if !ok || missing == "" {
			continue
		}
		out = append(out, RuleSetFinding{
			Index: i,
			Of:    i,
			Diag: Diagnostic{
				Analyzer: RuleSetSupportAnalyzer,
				Severity: Warning,
				Message: fmt.Sprintf(
					"rule %s: support query does not contain the body pattern %s — support and body match different domains, so confidence = support/body is unreliable",
					entryName(entries, i), missing),
			},
		})
	}
	return out
}

// supportMissingShape returns the canonical shape of the first body pattern
// part with no matching part in the support query, or "" when every body
// part is covered. ok is false when either query fails to parse.
func supportMissingShape(support, body string) (missing string, ok bool) {
	sq, err := cypher.Parse(support)
	if err != nil {
		return "", false
	}
	bq, err := cypher.Parse(body)
	if err != nil {
		return "", false
	}
	have := map[string]int{}
	for _, p := range matchParts(sq) {
		have[partShape(p)]++
	}
	for _, p := range matchParts(bq) {
		shape := partShape(p)
		if have[shape] == 0 {
			return shape, true
		}
		have[shape]--
	}
	return "", true
}

// matchParts collects the pattern parts of every MATCH clause (optional or
// not) in the query, in source order.
func matchParts(q *cypher.Query) []*cypher.PatternPart {
	var parts []*cypher.PatternPart
	for _, cl := range q.Clauses {
		if mc, isMatch := cl.(*cypher.MatchClause); isMatch {
			parts = append(parts, mc.Patterns...)
		}
	}
	return parts
}

// partShape renders one pattern part with its variables alpha-renamed
// within the part. Anonymous elements draw fresh names from the same
// counter, so naming an element never changes the shape — (x:P) and (:P)
// render identically — while repetition still does: the self-loop
// (a)-[:T]->(a) keeps a different shape than (a)-[:T]->(b). The part is
// mutated in place; callers must pass freshly parsed ASTs.
func partShape(p *cypher.PatternPart) string {
	names := map[string]string{}
	next := 0
	assign := func(old string) string {
		if old != "" {
			if n, seen := names[old]; seen {
				return n
			}
		}
		next++
		n := fmt.Sprintf("v%d", next)
		if old != "" {
			names[old] = n
		}
		return n
	}
	for _, n := range p.Nodes {
		n.Var = assign(n.Var)
	}
	for _, rel := range p.Rels {
		rel.Var = assign(rel.Var)
	}
	cypher.WalkPatternExprs(p, func(e cypher.Expr) {
		if v, isVar := e.(*cypher.Variable); isVar {
			if n, seen := names[v.Name]; seen {
				v.Name = n
			}
		}
	})
	return p.String()
}

// RuleSetVarAgreement reports every entry whose head and body queries are
// the same pattern up to variable renaming yet disagree on the variable
// names themselves. The queries still measure the same domain, so the
// scores are right — but the naming drift is a tell that the generator
// lost track of its bindings between the two queries, and it defeats
// textual review of the rule. Comparison happens on the AST re-rendering,
// so formatting and whitespace differences never count as disagreement.
func RuleSetVarAgreement(entries []RuleSetEntry) []RuleSetFinding {
	var out []RuleSetFinding
	for i, e := range entries {
		normBody, okB := NormalizeQuery(e.Body)
		normHead, okH := NormalizeQuery(e.Head)
		if !okB || !okH || normBody != normHead {
			continue // different patterns (or unparseable): nothing to compare
		}
		rawBody, okB := canonicalRender(e.Body)
		rawHead, okH := canonicalRender(e.Head)
		if !okB || !okH || rawBody == rawHead {
			continue
		}
		out = append(out, RuleSetFinding{
			Index: i,
			Of:    i,
			Diag: Diagnostic{
				Analyzer: RuleSetVarsAnalyzer,
				Severity: Warning,
				Message: fmt.Sprintf(
					"rule %s: head and body are the same pattern but disagree on variable naming (%q vs %q)",
					entryName(entries, i), rawHead, rawBody),
			},
		})
	}
	return out
}

// canonicalRender re-renders src from its AST without renaming, washing out
// formatting differences while preserving variable names.
func canonicalRender(src string) (string, bool) {
	q, err := cypher.Parse(src)
	if err != nil {
		return "", false
	}
	return q.String(), true
}
