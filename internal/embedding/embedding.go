// Package embedding provides a deterministic text embedder standing in for
// the paper's GPT4AllEmbeddings: a feature-hashing bag-of-words model that
// maps text to an L2-normalized dense vector. Lexically similar chunks land
// close in cosine space, which preserves the retrieval behaviour (and the
// retrieval failure modes §4.5 discusses) of the original pipeline.
package embedding

import (
	"fmt"
	"hash/fnv"
	"math"
	"strings"
	"unicode"
)

// DefaultDim is the embedding dimensionality used by the pipeline.
const DefaultDim = 256

// Embedder converts text into fixed-size vectors.
type Embedder interface {
	// Dim returns the vector dimensionality.
	Dim() int
	// Embed returns the L2-normalized embedding of the text. Empty or
	// token-free text embeds to the zero vector.
	Embed(text string) []float32
}

// HashingEmbedder is a signed feature-hashing ("hashing trick") embedder
// over lowercased word tokens and word bigrams. The zero value is not
// usable; construct with NewHashing.
type HashingEmbedder struct {
	dim int
}

// NewHashing returns a hashing embedder with the given dimensionality.
func NewHashing(dim int) (*HashingEmbedder, error) {
	if dim <= 0 {
		return nil, fmt.Errorf("embedding: dimension must be positive, got %d", dim)
	}
	return &HashingEmbedder{dim: dim}, nil
}

// MustNewHashing is NewHashing that panics on invalid input.
func MustNewHashing(dim int) *HashingEmbedder {
	e, err := NewHashing(dim)
	if err != nil {
		panic(err)
	}
	return e
}

// Dim implements Embedder.
func (e *HashingEmbedder) Dim() int { return e.dim }

// Embed implements Embedder.
func (e *HashingEmbedder) Embed(text string) []float32 {
	vec := make([]float32, e.dim)
	words := words(text)
	if len(words) == 0 {
		return vec
	}
	for i, w := range words {
		e.addFeature(vec, w, 1)
		if i+1 < len(words) {
			e.addFeature(vec, w+"\x00"+words[i+1], 0.5)
		}
	}
	normalize(vec)
	return vec
}

func (e *HashingEmbedder) addFeature(vec []float32, feature string, weight float32) {
	h := fnv.New64a()
	h.Write([]byte(feature))
	sum := h.Sum64()
	idx := int(sum % uint64(e.dim))
	sign := float32(1)
	if (sum>>63)&1 == 1 {
		sign = -1
	}
	vec[idx] += sign * weight
}

// words lowercases and splits text into alphanumeric runs, dropping pure
// punctuation.
func words(text string) []string {
	var out []string
	var cur strings.Builder
	flush := func() {
		if cur.Len() > 0 {
			out = append(out, cur.String())
			cur.Reset()
		}
	}
	for _, r := range text {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			cur.WriteRune(unicode.ToLower(r))
		} else {
			flush()
		}
	}
	flush()
	return out
}

func normalize(vec []float32) {
	var sum float64
	for _, v := range vec {
		sum += float64(v) * float64(v)
	}
	if sum == 0 {
		return
	}
	inv := float32(1 / math.Sqrt(sum))
	for i := range vec {
		vec[i] *= inv
	}
}

// Cosine returns the cosine similarity of two equal-length vectors. For
// unit vectors this is the dot product; a zero vector yields 0.
func Cosine(a, b []float32) float64 {
	if len(a) != len(b) {
		return 0
	}
	var dot, na, nb float64
	for i := range a {
		dot += float64(a[i]) * float64(b[i])
		na += float64(a[i]) * float64(a[i])
		nb += float64(b[i]) * float64(b[i])
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / math.Sqrt(na*nb)
}
