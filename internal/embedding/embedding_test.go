package embedding

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewHashingValidation(t *testing.T) {
	if _, err := NewHashing(0); err == nil {
		t.Error("dim 0 should fail")
	}
	if _, err := NewHashing(-1); err == nil {
		t.Error("negative dim should fail")
	}
	e, err := NewHashing(64)
	if err != nil || e.Dim() != 64 {
		t.Error("NewHashing(64) failed")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustNewHashing(0) should panic")
		}
	}()
	MustNewHashing(0)
}

func TestEmbedDeterministicAndNormalized(t *testing.T) {
	e := MustNewHashing(DefaultDim)
	a := e.Embed("Node 1 with labels User has properties id 7")
	b := e.Embed("Node 1 with labels User has properties id 7")
	if len(a) != DefaultDim {
		t.Fatalf("len = %d", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("embedding not deterministic")
		}
	}
	var norm float64
	for _, v := range a {
		norm += float64(v) * float64(v)
	}
	if math.Abs(norm-1) > 1e-5 {
		t.Errorf("norm = %f, want 1", norm)
	}
}

func TestEmbedEmptyText(t *testing.T) {
	e := MustNewHashing(32)
	v := e.Embed("!!! ... ---")
	for _, x := range v {
		if x != 0 {
			t.Fatal("punctuation-only text should embed to zero")
		}
	}
	if Cosine(v, v) != 0 {
		t.Error("zero-vector cosine should be 0")
	}
}

func TestSimilarTextsCloser(t *testing.T) {
	e := MustNewHashing(DefaultDim)
	base := e.Embed("Node 5 with labels Tweet has properties id 101 text hello")
	near := e.Embed("Node 6 with labels Tweet has properties id 102 text hello")
	far := e.Embed("completely unrelated words about cooking pasta recipes tonight")
	if Cosine(base, near) <= Cosine(base, far) {
		t.Errorf("similar text should be closer: near=%f far=%f",
			Cosine(base, near), Cosine(base, far))
	}
	if c := Cosine(base, base); math.Abs(c-1) > 1e-5 {
		t.Errorf("self-cosine = %f", c)
	}
}

func TestCosineEdgeCases(t *testing.T) {
	if Cosine([]float32{1, 0}, []float32{1, 0, 0}) != 0 {
		t.Error("mismatched dims should return 0")
	}
	if c := Cosine([]float32{1, 0}, []float32{-1, 0}); math.Abs(c+1) > 1e-9 {
		t.Errorf("opposite vectors cosine = %f", c)
	}
}

func TestCaseInsensitive(t *testing.T) {
	e := MustNewHashing(DefaultDim)
	a := e.Embed("HELLO World")
	b := e.Embed("hello world")
	if Cosine(a, b) < 0.999 {
		t.Error("embedding should be case-insensitive")
	}
}

func TestCosineBoundsProperty(t *testing.T) {
	e := MustNewHashing(64)
	f := func(s1, s2 string) bool {
		c := Cosine(e.Embed(s1), e.Embed(s2))
		return c >= -1.0000001 && c <= 1.0000001
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestWords(t *testing.T) {
	got := words("Node-1: (id: 7, name: \"Ann\")")
	want := []string{"node", "1", "id", "7", "name", "ann"}
	if len(got) != len(want) {
		t.Fatalf("words = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("words[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}
