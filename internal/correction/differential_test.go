package correction_test

// Differential test: the lint-backed classifier must agree with the
// preserved pre-lint implementation (legacy_test.go) on every query set the
// seeded pipeline generates, across all three datasets, both models, both
// methods and both prompting modes. The lint framework may surface extra
// diagnostics, but the derived §4.4 category is the paper-facing contract.

import (
	"runtime"
	"testing"

	"github.com/graphrules/graphrules/internal/correction"
	"github.com/graphrules/graphrules/internal/datasets"
	"github.com/graphrules/graphrules/internal/graph"
	"github.com/graphrules/graphrules/internal/llm"
	"github.com/graphrules/graphrules/internal/mining"
	"github.com/graphrules/graphrules/internal/prompt"
)

func TestLintClassifierAgreesWithLegacy(t *testing.T) {
	if testing.Short() {
		t.Skip("full-grid differential test")
	}
	for _, name := range datasets.Names() {
		t.Run(name, func(t *testing.T) {
			gen, err := datasets.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			g := gen(datasets.DefaultOptions())
			schema := graph.ExtractSchema(g)
			sets := 0
			for _, profile := range llm.Profiles() {
				model := llm.NewSim(profile, 1)
				for _, method := range mining.Methods {
					for _, mode := range prompt.Modes {
						res, err := mining.Mine(g, mining.Config{
							Model: model, Method: method, Mode: mode,
							ScoreWorkers: runtime.GOMAXPROCS(0),
						})
						if err != nil {
							t.Fatalf("%s/%s/%s: %v", profile.Name, method, mode, err)
						}
						for _, mr := range res.Rules {
							if mr.Generated.Support == "" {
								continue // translation failed; nothing classified
							}
							sets++
							got := correction.Classify(mr.Generated, schema)
							want := correction.LegacyClassify(mr.Generated, schema)
							if got != want {
								t.Errorf("%s/%s/%s rule %q:\nlint classifier: %v\nlegacy classifier: %v\nsupport: %s\nbody: %s\nhead: %s",
									profile.Name, method, mode, mr.NL, got, want,
									mr.Generated.Support, mr.Generated.Body, mr.Generated.HeadTotal)
							}
							if got != mr.Category {
								t.Errorf("%s/%s/%s rule %q: pipeline recorded %v, reclassify says %v",
									profile.Name, method, mode, mr.NL, mr.Category, got)
							}
						}
					}
				}
			}
			if sets == 0 {
				t.Fatal("no generated query sets classified")
			}
			t.Logf("%s: %d query sets agree", name, sets)
		})
	}
}
