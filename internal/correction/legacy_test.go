package correction

// This file preserves the pre-lint §4.4 classifier verbatim as a test
// oracle: TestLintClassifierAgreesWithLegacy (classify_test.go) runs both
// implementations over the seeded LLM outputs for all three datasets and
// requires identical categories. The lint-based classifier may flag more in
// its *diagnostics* (unknown labels, unused variables, ...), but the derived
// category must not move.

import (
	"strings"

	"github.com/graphrules/graphrules/internal/cypher"
	"github.com/graphrules/graphrules/internal/graph"
	"github.com/graphrules/graphrules/internal/rules"
)

func legacyClassify(qs rules.QuerySet, schema *graph.Schema) Category {
	queries := []string{qs.Support, qs.Body, qs.HeadTotal}
	parsed := make([]*cypher.Query, 0, len(queries))
	for _, src := range queries {
		q, err := cypher.Parse(src)
		if err != nil {
			return SyntaxError
		}
		parsed = append(parsed, q)
	}
	for _, q := range parsed {
		if legacyRegexAsEquality(q) {
			return SyntaxError
		}
	}
	for _, q := range parsed {
		if legacyHallucinatedProperty(q, schema) {
			return HallucinatedProperty
		}
	}
	for _, q := range parsed {
		if legacyDirectionError(q, schema) {
			return DirectionError
		}
	}
	return Correct
}

func legacyRegexAsEquality(q *cypher.Query) bool {
	found := false
	cypher.WalkExprs(q, func(e cypher.Expr) {
		b, ok := e.(*cypher.Binary)
		if !ok || b.Op != cypher.OpEq {
			return
		}
		lit, ok := b.R.(*cypher.Literal)
		if !ok || lit.Value.Kind() != graph.KindString {
			return
		}
		if legacyLooksLikeRegex(lit.Value.Str()) {
			found = true
		}
	})
	return found
}

func legacyLooksLikeRegex(s string) bool {
	if strings.HasPrefix(s, "^") || strings.HasSuffix(s, "$") {
		return true
	}
	for _, marker := range []string{"[a-z", "[A-Z", "[0-9", "\\d", "\\w", "+)", "{2,}", ".*", ".+"} {
		if strings.Contains(s, marker) {
			return true
		}
	}
	return false
}

func legacyHallucinatedProperty(q *cypher.Query, schema *graph.Schema) bool {
	nodeLabels, edgeTypes := legacyBindingLabels(q)
	found := false
	cypher.WalkExprs(q, func(e cypher.Expr) {
		pa, ok := e.(*cypher.PropAccess)
		if !ok {
			return
		}
		v, ok := pa.Target.(*cypher.Variable)
		if !ok {
			return
		}
		if labels := nodeLabels[v.Name]; len(labels) > 0 {
			for _, l := range labels {
				if !schema.HasNodeProp(l, pa.Key) {
					found = true
				}
			}
		}
		if types := edgeTypes[v.Name]; len(types) > 0 {
			for _, t := range types {
				if !schema.HasEdgeProp(t, pa.Key) {
					found = true
				}
			}
		}
	})
	return found
}

func legacyDirectionError(q *cypher.Query, schema *graph.Schema) bool {
	nodeLabels, _ := legacyBindingLabels(q)
	labelOf := func(np *cypher.NodePattern) string {
		if len(np.Labels) > 0 {
			return np.Labels[0]
		}
		if np.Var != "" {
			if ls := nodeLabels[np.Var]; len(ls) > 0 {
				return ls[0]
			}
		}
		return ""
	}
	bad := false
	cypher.ForEachPattern(q, func(part *cypher.PatternPart) {
		for i, rel := range part.Rels {
			if rel.Direction == cypher.DirBoth || len(rel.Types) != 1 {
				continue
			}
			es := schema.EdgeLabels[rel.Types[0]]
			if es == nil {
				continue
			}
			domFrom, domTo := es.DominantEndpoints()
			if domFrom == "" || domFrom == domTo {
				continue
			}
			left, right := labelOf(part.Nodes[i]), labelOf(part.Nodes[i+1])
			var from, to string
			if rel.Direction == cypher.DirOut {
				from, to = left, right
			} else {
				from, to = right, left
			}
			if from == domTo && to == domFrom {
				bad = true
			}
		}
	})
	return bad
}

func legacyBindingLabels(q *cypher.Query) (nodeLabels, edgeTypes map[string][]string) {
	nodeLabels = map[string][]string{}
	edgeTypes = map[string][]string{}
	cypher.ForEachPattern(q, func(part *cypher.PatternPart) {
		for _, n := range part.Nodes {
			if n.Var != "" && len(n.Labels) > 0 {
				nodeLabels[n.Var] = append(nodeLabels[n.Var], n.Labels...)
			}
		}
		for _, r := range part.Rels {
			if r.Var != "" && len(r.Types) == 1 {
				edgeTypes[r.Var] = append(edgeTypes[r.Var], r.Types[0])
			}
		}
	})
	for _, cl := range q.Clauses {
		var where cypher.Expr
		switch c := cl.(type) {
		case *cypher.MatchClause:
			where = c.Where
		case *cypher.WithClause:
			where = c.Where
		}
		legacyCollectLabelPreds(where, nodeLabels)
	}
	return nodeLabels, edgeTypes
}

func legacyCollectLabelPreds(e cypher.Expr, into map[string][]string) {
	switch x := e.(type) {
	case nil:
		return
	case *cypher.Binary:
		if x.Op == cypher.OpAnd {
			legacyCollectLabelPreds(x.L, into)
			legacyCollectLabelPreds(x.R, into)
		}
	case *cypher.HasLabels:
		if v, ok := x.E.(*cypher.Variable); ok {
			into[v.Name] = append(into[v.Name], x.Labels...)
		}
	}
}
