package correction

// LegacyClassify exposes the preserved pre-lint classifier to the external
// differential test (differential_test.go, package correction_test).
var LegacyClassify = legacyClassify
