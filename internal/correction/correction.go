// Package correction reproduces the paper's §4.4 query-correction protocol.
// Generated Cypher is classified into the paper's error categories —
// correct, wrong relationship direction, hallucinated (non-existent)
// property, or syntax error — and then corrected the way the authors did by
// hand: syntax and direction errors are fixed (here: automatically, the
// paper's own suggested future work), while hallucinated-property queries
// are deliberately left broken because they reflect rule-level
// hallucination rather than translation mistakes.
//
// Classification is built on the internal/lint analyzer framework: each
// category is the projection of one analyzer's findings (syntax/regexeq →
// syntax error, unknownprop → hallucinated property, reldirection →
// direction error), so every category comes with positioned, explainable
// diagnostics via Analyze.
package correction

import (
	"github.com/graphrules/graphrules/internal/graph"
	"github.com/graphrules/graphrules/internal/lint"
	"github.com/graphrules/graphrules/internal/rules"
)

// Category classifies one generated query set.
type Category uint8

const (
	// Correct queries parse and match the data model.
	Correct Category = iota
	// DirectionError queries reverse a relationship against the schema.
	DirectionError
	// HallucinatedProperty queries reference properties absent from the
	// schema (for the labels they touch).
	HallucinatedProperty
	// SyntaxError queries fail to parse, or misuse an operator the way the
	// paper's example does (`=` against a regular-expression literal).
	SyntaxError
)

// String returns the category name.
func (c Category) String() string {
	switch c {
	case Correct:
		return "correct"
	case DirectionError:
		return "direction-error"
	case HallucinatedProperty:
		return "hallucinated-property"
	case SyntaxError:
		return "syntax-error"
	default:
		return "unknown"
	}
}

// Categories lists all categories in report order.
var Categories = []Category{Correct, DirectionError, HallucinatedProperty, SyntaxError}

// QueryNames labels the three queries of a set in Report order.
var QueryNames = [3]string{"support", "body", "head"}

// Report is the full lint result for a generated query set: per-query
// diagnostics plus the derived §4.4 category.
type Report struct {
	// Diags holds the diagnostics for the support, body and head-total
	// queries, in QueryNames order.
	Diags [3][]lint.Diagnostic
	// Category is the §4.4 classification derived from the diagnostics.
	Category Category
}

// All returns the diagnostics of the three queries concatenated.
func (r Report) All() []lint.Diagnostic {
	var out []lint.Diagnostic
	for _, ds := range r.Diags {
		out = append(out, ds...)
	}
	return out
}

// categoryAnalyzers maps analyzer names to the §4.4 category their findings
// imply. Remaining analyzers (unknown labels, unused variables, perf lints,
// ...) do not move a query set out of Correct: the paper's protocol only
// recognizes these three error classes.
var categoryAnalyzers = map[string]Category{
	lint.SyntaxAnalyzer: SyntaxError,
	"regexeq":           SyntaxError,
	"unknownprop":       HallucinatedProperty,
	"reldirection":      DirectionError,
}

// Analyze lints the three queries of a generated set against the schema and
// derives the §4.4 category. Precedence follows the paper: syntax
// (unparseable or mis-operatored output can't be trusted further), then
// hallucinated property, then direction — applied across the whole set.
func Analyze(qs rules.QuerySet, schema *graph.Schema) Report {
	var rep Report
	for i, src := range [3]string{qs.Support, qs.Body, qs.HeadTotal} {
		rep.Diags[i] = lint.Source(src, schema, lint.Options{})
	}
	rep.Category = categorize(rep.Diags[:])
	return rep
}

func categorize(perQuery [][]lint.Diagnostic) Category {
	found := map[Category]bool{}
	for _, diags := range perQuery {
		for _, d := range diags {
			if cat, ok := categoryAnalyzers[d.Analyzer]; ok {
				found[cat] = true
			}
		}
	}
	switch {
	case found[SyntaxError]:
		return SyntaxError
	case found[HallucinatedProperty]:
		return HallucinatedProperty
	case found[DirectionError]:
		return DirectionError
	default:
		return Correct
	}
}

// Classify determines the §4.4 category of a generated query set against
// the graph schema.
func Classify(qs rules.QuerySet, schema *graph.Schema) Category {
	return Analyze(qs, schema).Category
}

// Fix applies the paper's correction protocol: syntax and direction errors
// are replaced with the rule's reference queries; hallucinated-property and
// correct queries are returned unchanged. fixed reports whether a
// correction was applied.
func Fix(qs rules.QuerySet, r rules.Rule, cat Category) (out rules.QuerySet, fixed bool) {
	switch cat {
	case SyntaxError, DirectionError:
		return r.Queries(), true
	default:
		return qs, false
	}
}
