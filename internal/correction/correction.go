// Package correction reproduces the paper's §4.4 query-correction protocol.
// Generated Cypher is classified into the paper's error categories —
// correct, wrong relationship direction, hallucinated (non-existent)
// property, or syntax error — and then corrected the way the authors did by
// hand: syntax and direction errors are fixed (here: automatically, the
// paper's own suggested future work), while hallucinated-property queries
// are deliberately left broken because they reflect rule-level
// hallucination rather than translation mistakes.
package correction

import (
	"strings"

	"github.com/graphrules/graphrules/internal/cypher"
	"github.com/graphrules/graphrules/internal/graph"
	"github.com/graphrules/graphrules/internal/rules"
)

// Category classifies one generated query set.
type Category uint8

const (
	// Correct queries parse and match the data model.
	Correct Category = iota
	// DirectionError queries reverse a relationship against the schema.
	DirectionError
	// HallucinatedProperty queries reference properties absent from the
	// schema (for the labels they touch).
	HallucinatedProperty
	// SyntaxError queries fail to parse, or misuse an operator the way the
	// paper's example does (`=` against a regular-expression literal).
	SyntaxError
)

// String returns the category name.
func (c Category) String() string {
	switch c {
	case Correct:
		return "correct"
	case DirectionError:
		return "direction-error"
	case HallucinatedProperty:
		return "hallucinated-property"
	case SyntaxError:
		return "syntax-error"
	default:
		return "unknown"
	}
}

// Categories lists all categories in report order.
var Categories = []Category{Correct, DirectionError, HallucinatedProperty, SyntaxError}

// Classify determines the §4.4 category of a generated query set against
// the graph schema. Precedence: syntax (unparseable output can't be checked
// further), then hallucinated property, then direction.
func Classify(qs rules.QuerySet, schema *graph.Schema) Category {
	queries := []string{qs.Support, qs.Body, qs.HeadTotal}
	parsed := make([]*cypher.Query, 0, len(queries))
	for _, src := range queries {
		q, err := cypher.Parse(src)
		if err != nil {
			return SyntaxError
		}
		parsed = append(parsed, q)
	}
	for _, q := range parsed {
		if regexAsEquality(q) {
			return SyntaxError
		}
	}
	for _, q := range parsed {
		if hallucinatedProperty(q, schema) {
			return HallucinatedProperty
		}
	}
	for _, q := range parsed {
		if directionError(q, schema) {
			return DirectionError
		}
	}
	return Correct
}

// Fix applies the paper's correction protocol: syntax and direction errors
// are replaced with the rule's reference queries; hallucinated-property and
// correct queries are returned unchanged. fixed reports whether a
// correction was applied.
func Fix(qs rules.QuerySet, r rules.Rule, cat Category) (out rules.QuerySet, fixed bool) {
	switch cat {
	case SyntaxError, DirectionError:
		return r.Queries(), true
	default:
		return qs, false
	}
}

// regexAsEquality detects the paper's `=` for `=~` confusion: an equality
// whose right side is a string literal that looks like a regular
// expression.
func regexAsEquality(q *cypher.Query) bool {
	found := false
	walkExprs(q, func(e cypher.Expr) {
		b, ok := e.(*cypher.Binary)
		if !ok || b.Op != cypher.OpEq {
			return
		}
		lit, ok := b.R.(*cypher.Literal)
		if !ok || lit.Value.Kind() != graph.KindString {
			return
		}
		if looksLikeRegex(lit.Value.Str()) {
			found = true
		}
	})
	return found
}

func looksLikeRegex(s string) bool {
	if strings.HasPrefix(s, "^") || strings.HasSuffix(s, "$") {
		return true
	}
	for _, marker := range []string{"[a-z", "[A-Z", "[0-9", "\\d", "\\w", "+)", "{2,}", ".*", ".+"} {
		if strings.Contains(s, marker) {
			return true
		}
	}
	return false
}

// hallucinatedProperty reports whether the query accesses a property that
// the schema has never seen on the labels bound to the accessed variable.
// Variables with no label constraints are skipped (any property could be
// legitimate somewhere).
func hallucinatedProperty(q *cypher.Query, schema *graph.Schema) bool {
	nodeLabels, edgeTypes := bindingLabels(q)
	found := false
	walkExprs(q, func(e cypher.Expr) {
		pa, ok := e.(*cypher.PropAccess)
		if !ok {
			return
		}
		v, ok := pa.Target.(*cypher.Variable)
		if !ok {
			return
		}
		if labels := nodeLabels[v.Name]; len(labels) > 0 {
			for _, l := range labels {
				if !schema.HasNodeProp(l, pa.Key) {
					found = true
				}
			}
		}
		if types := edgeTypes[v.Name]; len(types) > 0 {
			for _, t := range types {
				if !schema.HasEdgeProp(t, pa.Key) {
					found = true
				}
			}
		}
	})
	return found
}

// directionError reports whether some directed single-type relationship in
// the query contradicts the schema's dominant direction for that type.
func directionError(q *cypher.Query, schema *graph.Schema) bool {
	nodeLabels, _ := bindingLabels(q)
	labelOf := func(np *cypher.NodePattern) string {
		if len(np.Labels) > 0 {
			return np.Labels[0]
		}
		if np.Var != "" {
			if ls := nodeLabels[np.Var]; len(ls) > 0 {
				return ls[0]
			}
		}
		return ""
	}
	bad := false
	forEachPattern(q, func(part *cypher.PatternPart) {
		for i, rel := range part.Rels {
			if rel.Direction == cypher.DirBoth || len(rel.Types) != 1 {
				continue
			}
			es := schema.EdgeLabels[rel.Types[0]]
			if es == nil {
				continue
			}
			domFrom, domTo := es.DominantEndpoints()
			if domFrom == "" || domFrom == domTo {
				continue
			}
			left, right := labelOf(part.Nodes[i]), labelOf(part.Nodes[i+1])
			var from, to string
			if rel.Direction == cypher.DirOut {
				from, to = left, right
			} else {
				from, to = right, left
			}
			// A direction error reads the relationship backwards: the
			// pattern's source sits where the schema's target belongs.
			if from == domTo && to == domFrom {
				bad = true
			}
		}
	})
	return bad
}

// bindingLabels gathers label constraints per variable from patterns and
// top-level AND-ed label predicates in WHERE clauses.
func bindingLabels(q *cypher.Query) (nodeLabels, edgeTypes map[string][]string) {
	nodeLabels = map[string][]string{}
	edgeTypes = map[string][]string{}
	forEachPattern(q, func(part *cypher.PatternPart) {
		for _, n := range part.Nodes {
			if n.Var != "" && len(n.Labels) > 0 {
				nodeLabels[n.Var] = append(nodeLabels[n.Var], n.Labels...)
			}
		}
		for _, r := range part.Rels {
			if r.Var != "" && len(r.Types) == 1 {
				edgeTypes[r.Var] = append(edgeTypes[r.Var], r.Types[0])
			}
		}
	})
	for _, cl := range q.Clauses {
		var where cypher.Expr
		switch c := cl.(type) {
		case *cypher.MatchClause:
			where = c.Where
		case *cypher.WithClause:
			where = c.Where
		}
		collectLabelPreds(where, nodeLabels)
	}
	return nodeLabels, edgeTypes
}

func collectLabelPreds(e cypher.Expr, into map[string][]string) {
	switch x := e.(type) {
	case nil:
		return
	case *cypher.Binary:
		if x.Op == cypher.OpAnd {
			collectLabelPreds(x.L, into)
			collectLabelPreds(x.R, into)
		}
	case *cypher.HasLabels:
		if v, ok := x.E.(*cypher.Variable); ok {
			into[v.Name] = append(into[v.Name], x.Labels...)
		}
	}
}

// forEachPattern visits every pattern part in MATCH clauses and pattern
// predicates.
func forEachPattern(q *cypher.Query, fn func(*cypher.PatternPart)) {
	var visitExpr func(e cypher.Expr)
	visitExpr = func(e cypher.Expr) {
		if pp, ok := e.(*cypher.PatternPred); ok {
			fn(pp.Pattern)
		}
	}
	for _, cl := range q.Clauses {
		switch c := cl.(type) {
		case *cypher.MatchClause:
			for _, p := range c.Patterns {
				fn(p)
			}
			walkExpr(c.Where, visitExpr)
		case *cypher.WithClause:
			walkExpr(c.Where, visitExpr)
			for _, it := range c.Items {
				walkExpr(it.Expr, visitExpr)
			}
		case *cypher.ReturnClause:
			for _, it := range c.Items {
				walkExpr(it.Expr, visitExpr)
			}
		}
	}
}

// walkExprs visits every expression in the query.
func walkExprs(q *cypher.Query, fn func(cypher.Expr)) {
	for _, cl := range q.Clauses {
		switch c := cl.(type) {
		case *cypher.MatchClause:
			walkExpr(c.Where, fn)
			for _, p := range c.Patterns {
				walkPatternExprs(p, fn)
			}
		case *cypher.WithClause:
			walkExpr(c.Where, fn)
			for _, it := range c.Items {
				walkExpr(it.Expr, fn)
			}
			walkSort(c.Projection, fn)
		case *cypher.ReturnClause:
			for _, it := range c.Items {
				walkExpr(it.Expr, fn)
			}
			walkSort(c.Projection, fn)
		case *cypher.UnwindClause:
			walkExpr(c.Expr, fn)
		case *cypher.SetClause:
			for _, it := range c.Items {
				walkExpr(it.Value, fn)
			}
		case *cypher.DeleteClause:
			for _, e := range c.Exprs {
				walkExpr(e, fn)
			}
		case *cypher.CreateClause:
			for _, p := range c.Patterns {
				walkPatternExprs(p, fn)
			}
		}
	}
}

func walkSort(p cypher.Projection, fn func(cypher.Expr)) {
	for _, s := range p.OrderBy {
		walkExpr(s.Expr, fn)
	}
	walkExpr(p.Skip, fn)
	walkExpr(p.Limit, fn)
}

func walkPatternExprs(part *cypher.PatternPart, fn func(cypher.Expr)) {
	for _, n := range part.Nodes {
		for _, e := range n.Props {
			walkExpr(e, fn)
		}
	}
	for _, r := range part.Rels {
		for _, e := range r.Props {
			walkExpr(e, fn)
		}
	}
}

// walkExpr visits e and all sub-expressions.
func walkExpr(e cypher.Expr, fn func(cypher.Expr)) {
	if e == nil {
		return
	}
	fn(e)
	switch x := e.(type) {
	case *cypher.Binary:
		walkExpr(x.L, fn)
		walkExpr(x.R, fn)
	case *cypher.Not:
		walkExpr(x.E, fn)
	case *cypher.Neg:
		walkExpr(x.E, fn)
	case *cypher.IsNull:
		walkExpr(x.E, fn)
	case *cypher.HasLabels:
		walkExpr(x.E, fn)
	case *cypher.PropAccess:
		walkExpr(x.Target, fn)
	case *cypher.Index:
		walkExpr(x.Target, fn)
		walkExpr(x.Sub, fn)
	case *cypher.FuncCall:
		for _, a := range x.Args {
			walkExpr(a, fn)
		}
	case *cypher.ListLit:
		for _, el := range x.Elems {
			walkExpr(el, fn)
		}
	case *cypher.CaseExpr:
		walkExpr(x.Operand, fn)
		for i := range x.Whens {
			walkExpr(x.Whens[i], fn)
			walkExpr(x.Thens[i], fn)
		}
		walkExpr(x.Else, fn)
	case *cypher.PatternPred:
		walkPatternExprs(x.Pattern, fn)
	}
}
