package correction

import (
	"testing"

	"github.com/graphrules/graphrules/internal/graph"
	"github.com/graphrules/graphrules/internal/llm"
	"github.com/graphrules/graphrules/internal/rules"
)

// fixtureSchema extracts the schema from a small User/Tweet graph.
func fixtureSchema() *graph.Schema {
	g := graph.New("cs")
	u := g.AddNode([]string{"User"}, graph.Props{"id": graph.NewInt(1), "name": graph.NewString("a"), "domain": graph.NewString("x.io")})
	v := g.AddNode([]string{"User"}, graph.Props{"id": graph.NewInt(2), "name": graph.NewString("b")})
	t1 := g.AddNode([]string{"Tweet"}, graph.Props{"id": graph.NewInt(10), "text": graph.NewString("t")})
	g.MustAddEdge(u.ID, t1.ID, []string{"POSTS"}, graph.Props{"at": graph.NewInt(1)})
	g.MustAddEdge(u.ID, v.ID, []string{"FOLLOWS"}, nil)
	return graph.ExtractSchema(g)
}

func qs(support string) rules.QuerySet {
	return rules.QuerySet{
		Support:   support,
		Body:      "MATCH (x:User) RETURN count(*) AS n",
		HeadTotal: "MATCH (x:User) RETURN count(*) AS n",
	}
}

func TestClassifyCorrect(t *testing.T) {
	s := fixtureSchema()
	cases := []rules.QuerySet{
		qs("MATCH (x:User) WHERE x.id IS NOT NULL RETURN count(*) AS n"),
		qs("MATCH (a:User)-[r:POSTS]->(b:Tweet) RETURN count(*) AS n"),
		qs("MATCH (x:User) WHERE x.domain =~ '([a-z]+\\.)+[a-z]{2,}' RETURN count(*) AS n"),
		qs("MATCH (x:Tweet) WHERE (x)<-[:POSTS]-(:User) RETURN count(*) AS n"),
	}
	for _, c := range cases {
		if got := Classify(c, s); got != Correct {
			t.Errorf("Classify(%q) = %v, want correct", c.Support, got)
		}
	}
}

func TestClassifySyntax(t *testing.T) {
	s := fixtureSchema()
	cases := []rules.QuerySet{
		qs("MATCH (x:User RETRUN count(*) AS n"),
		qs("MATCH (x:User) WHERE x.domain = '^([a-z]+\\.)+[a-z]{2,}$' RETURN count(*) AS n"), // = for =~
		qs("MATCH (x:User) WHERE x.domain = '[a-z0-9-]+' RETURN count(*) AS n"),
	}
	for _, c := range cases {
		if got := Classify(c, s); got != SyntaxError {
			t.Errorf("Classify(%q) = %v, want syntax-error", c.Support, got)
		}
	}
	// Plain string equality is NOT a syntax error.
	ok := qs("MATCH (x:User) WHERE x.name = 'alice' RETURN count(*) AS n")
	if got := Classify(ok, s); got != Correct {
		t.Errorf("plain equality misclassified as %v", got)
	}
}

func TestClassifyHallucinated(t *testing.T) {
	s := fixtureSchema()
	cases := []rules.QuerySet{
		qs("MATCH (x:User) WHERE x.penaltyScore IS NOT NULL RETURN count(*) AS n"),
		qs("MATCH (a:User)-[r:POSTS]->(b:Tweet) WHERE r.minutes IS NOT NULL RETURN count(*) AS n"),
		qs("MATCH (x:Tweet) WHERE x.score > 1 RETURN count(*) AS n"),
	}
	for _, c := range cases {
		if got := Classify(c, s); got != HallucinatedProperty {
			t.Errorf("Classify(%q) = %v, want hallucinated-property", c.Support, got)
		}
	}
	// Properties on unlabeled variables are not checkable.
	ok := qs("MATCH (x) WHERE x.whatever IS NOT NULL RETURN count(*) AS n")
	if got := Classify(ok, s); got != Correct {
		t.Errorf("unlabeled access misclassified as %v", got)
	}
}

func TestClassifyDirection(t *testing.T) {
	s := fixtureSchema()
	flipped := qs("MATCH (a:User)<-[r:POSTS]-(b:Tweet) RETURN count(*) AS n")
	if got := Classify(flipped, s); got != DirectionError {
		t.Errorf("Classify(flipped) = %v, want direction-error", got)
	}
	// Labels via WHERE predicates are also resolved.
	flipped2 := qs("MATCH (a)-[r:POSTS]->(b) WHERE a:Tweet AND b:User RETURN count(*) AS n")
	if got := Classify(flipped2, s); got != DirectionError {
		t.Errorf("Classify(flipped via WHERE) = %v, want direction-error", got)
	}
	// Same-label edges cannot be direction-checked.
	same := qs("MATCH (a:User)<-[r:FOLLOWS]-(b:User) RETURN count(*) AS n")
	if got := Classify(same, s); got != Correct {
		t.Errorf("same-label flip = %v, want correct", got)
	}
}

func TestClassifyPrecedence(t *testing.T) {
	s := fixtureSchema()
	// Unparseable beats everything.
	c := qs("MATCH (a:User)<-[r:POSTS]-(b:Tweet) WHERE a.ghost RETRUN 1")
	if got := Classify(c, s); got != SyntaxError {
		t.Errorf("precedence = %v, want syntax-error", got)
	}
	// Hallucinated beats direction.
	c2 := qs("MATCH (a:User)<-[r:POSTS]-(b:Tweet) WHERE a.ghost IS NOT NULL RETURN count(*) AS n")
	if got := Classify(c2, s); got != HallucinatedProperty {
		t.Errorf("precedence = %v, want hallucinated-property", got)
	}
}

func TestFixProtocol(t *testing.T) {
	s := fixtureSchema()
	r := &rules.EdgeEndpoints{EdgeType: "POSTS", FromLabel: "User", ToLabel: "Tweet"}
	good := r.Queries()

	// Direction error: regenerated.
	broken := rules.QuerySet{
		Support:   llm.FlipFirstArrow(good.Support),
		Body:      llm.FlipFirstArrow(good.Body),
		HeadTotal: llm.FlipFirstArrow(good.HeadTotal),
	}
	cat := Classify(broken, s)
	if cat != DirectionError {
		t.Fatalf("category = %v", cat)
	}
	fixed, wasFixed := Fix(broken, r, cat)
	if !wasFixed || fixed != good {
		t.Errorf("direction fix failed: %+v", fixed)
	}

	// Syntax error: regenerated.
	syn := good
	syn.Support = "MATCH (a RETURN 1"
	fixed, wasFixed = Fix(syn, r, SyntaxError)
	if !wasFixed || fixed != good {
		t.Error("syntax fix failed")
	}

	// Hallucinated: left alone (the paper's protocol).
	hall := &rules.RequiredProperty{Label: "User", Key: "penaltyScore"}
	hq := hall.Queries()
	fixed, wasFixed = Fix(hq, hall, HallucinatedProperty)
	if wasFixed || fixed != hq {
		t.Error("hallucinated queries must stay broken")
	}

	// Correct: untouched.
	fixed, wasFixed = Fix(good, r, Correct)
	if wasFixed || fixed != good {
		t.Error("correct queries must pass through")
	}
}

func TestCategoryString(t *testing.T) {
	want := map[Category]string{
		Correct:              "correct",
		DirectionError:       "direction-error",
		HallucinatedProperty: "hallucinated-property",
		SyntaxError:          "syntax-error",
		Category(99):         "unknown",
	}
	for c, s := range want {
		if c.String() != s {
			t.Errorf("%d.String() = %q, want %q", c, c.String(), s)
		}
	}
	if len(Categories) != 4 {
		t.Error("Categories should list all four")
	}
}

// TestGeneratedRulesClassifyCorrectly feeds every rule kind's reference
// queries through the classifier: all must classify as correct.
func TestGeneratedRulesClassifyCorrectly(t *testing.T) {
	g := graph.New("full")
	u := g.AddNode([]string{"User"}, graph.Props{"id": graph.NewInt(1), "owned": graph.NewBool(true), "at": graph.NewInt(3)})
	v := g.AddNode([]string{"User"}, graph.Props{"id": graph.NewInt(2), "owned": graph.NewBool(false), "at": graph.NewInt(4)})
	tw := g.AddNode([]string{"Tweet"}, graph.Props{"id": graph.NewInt(3)})
	sq := g.AddNode([]string{"Squad"}, nil)
	cp := g.AddNode([]string{"Comp"}, nil)
	g.MustAddEdge(u.ID, tw.ID, []string{"POSTS"}, graph.Props{"minute": graph.NewInt(1)})
	g.MustAddEdge(u.ID, v.ID, []string{"FOLLOWS"}, nil)
	g.MustAddEdge(u.ID, sq.ID, []string{"IN_SQUAD"}, nil)
	g.MustAddEdge(sq.ID, cp.ID, []string{"FOR"}, nil)
	g.MustAddEdge(tw.ID, cp.ID, []string{"IN_COMP"}, nil)
	s := graph.ExtractSchema(g)

	all := []rules.Rule{
		&rules.RequiredProperty{Label: "User", Key: "id"},
		&rules.RequiredProperty{Label: "POSTS", Key: "minute", OnEdge: true},
		&rules.UniqueProperty{Label: "User", Key: "id"},
		&rules.ValueDomain{Label: "User", Key: "owned", Allowed: []graph.Value{graph.NewBool(true)}},
		&rules.PropertyType{Label: "User", Key: "id", PropKind: graph.KindInt},
		&rules.EdgeEndpoints{EdgeType: "POSTS", FromLabel: "User", ToLabel: "Tweet"},
		&rules.MandatoryEdge{Label: "Tweet", EdgeType: "POSTS", Incoming: true, OtherLabel: "User"},
		&rules.NoSelfLoop{EdgeType: "FOLLOWS"},
		&rules.TemporalOrder{EdgeType: "FOLLOWS", FromLabel: "User", ToLabel: "User", Key: "at"},
		&rules.UniqueEdgeProp{EdgeType: "POSTS", FromLabel: "User", ToLabel: "Tweet", Key: "minute"},
		&rules.PathAssociation{ALabel: "User", E1: "POSTS", BLabel: "Tweet", E2: "IN_COMP", CLabel: "Comp",
			ReqE1: "IN_SQUAD", ReqLabel: "Squad", ReqE2: "FOR"},
	}
	for _, r := range all {
		if got := Classify(r.Queries(), s); got != Correct {
			t.Errorf("%s reference queries classify as %v", r.DedupKey(), got)
		}
	}
}

// TestClassifyWalksAllClauses exercises the expression walkers across every
// clause type that can carry a hallucinated property access.
func TestClassifyWalksAllClauses(t *testing.T) {
	s := fixtureSchema()
	cases := []string{
		// In a WITH projection.
		"MATCH (x:User) WITH x.ghost AS g RETURN count(*) AS n",
		// In ORDER BY.
		"MATCH (x:User) RETURN x.id AS id ORDER BY x.ghost",
		// In a CASE expression.
		"MATCH (x:User) RETURN CASE WHEN x.ghost IS NULL THEN 1 ELSE 2 END AS n",
		// In a list literal / IN.
		"MATCH (x:User) WHERE x.id IN [x.ghost, 2] RETURN count(*) AS n",
		// In a function argument.
		"MATCH (x:User) RETURN size(toString(x.ghost)) AS n",
		// In a pattern property map.
		"MATCH (x:User {id: 1}) MATCH (y:User {name: x.ghost}) RETURN count(*) AS n",
		// In UNWIND.
		"MATCH (x:User) UNWIND [x.ghost] AS v RETURN count(*) AS n",
		// In SET value.
		"MATCH (x:User) SET x.id = x.ghost",
		// Negated / nested boolean context.
		"MATCH (x:User) WHERE NOT (x.ghost > 1 XOR false) RETURN count(*) AS n",
	}
	for _, support := range cases {
		got := Classify(rules.QuerySet{
			Support:   support,
			Body:      "MATCH (x:User) RETURN count(*) AS n",
			HeadTotal: "MATCH (x:User) RETURN count(*) AS n",
		}, s)
		if got != HallucinatedProperty {
			t.Errorf("Classify(%q) = %v, want hallucinated-property", support, got)
		}
	}
}

// TestClassifyPatternPredicateDirection checks direction analysis inside
// WHERE pattern predicates.
func TestClassifyPatternPredicateDirection(t *testing.T) {
	s := fixtureSchema()
	flipped := rules.QuerySet{
		Support:   "MATCH (t:Tweet) WHERE (t)-[:POSTS]->(:User) RETURN count(*) AS n",
		Body:      "MATCH (t:Tweet) RETURN count(*) AS n",
		HeadTotal: "MATCH (t:Tweet) RETURN count(*) AS n",
	}
	if got := Classify(flipped, s); got != DirectionError {
		t.Errorf("pattern predicate flip = %v, want direction-error", got)
	}
}
