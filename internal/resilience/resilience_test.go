package resilience

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/graphrules/graphrules/internal/llm"
)

// scriptModel returns the scripted error for each successive call (nil
// means success); calls beyond the script succeed.
type scriptModel struct {
	mu     sync.Mutex
	script []error
	calls  int
}

func (m *scriptModel) Name() string { return "script" }
func (m *scriptModel) Complete(p string) (llm.Response, error) {
	m.mu.Lock()
	i := m.calls
	m.calls++
	m.mu.Unlock()
	if i < len(m.script) && m.script[i] != nil {
		return llm.Response{}, m.script[i]
	}
	return llm.Response{Text: "ok:" + p}, nil
}
func (m *scriptModel) callCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.calls
}

// hangModel blocks until the context is done.
type hangModel struct{}

func (hangModel) Name() string { return "hang" }
func (hangModel) Complete(p string) (llm.Response, error) {
	select {}
}
func (hangModel) CompleteCtx(ctx context.Context, p string) (llm.Response, error) {
	<-ctx.Done()
	return llm.Response{}, ctx.Err()
}

func transientErr(msg string) error {
	return &llm.TransientError{Err: errors.New(msg)}
}

func TestIsTransient(t *testing.T) {
	if IsTransient(nil) {
		t.Error("nil is not transient")
	}
	if IsTransient(errors.New("plain")) {
		t.Error("plain errors are not transient")
	}
	if !IsTransient(transientErr("flaky")) {
		t.Error("marked error should be transient")
	}
	if !IsTransient(fmt.Errorf("wrapped: %w", MarkTransient(errors.New("x")))) {
		t.Error("transient marker must survive wrapping")
	}
	if IsTransient(context.Canceled) {
		t.Error("cancellation is not transient")
	}
	if !IsTransient(&CallTimeoutError{Timeout: time.Second}) {
		t.Error("per-attempt timeout must be transient")
	}
	if IsTransient(ErrBreakerOpen) {
		t.Error("an open breaker is not transient")
	}
}

func TestRetryRecoversTransient(t *testing.T) {
	m := &scriptModel{script: []error{transientErr("1"), transientErr("2"), nil}}
	r := NewRetry(m, RetryConfig{MaxAttempts: 4, BaseDelay: time.Microsecond})
	resp, err := r.Complete("p")
	if err != nil {
		t.Fatal(err)
	}
	if resp.Attempts != 3 {
		t.Errorf("attempts = %d, want 3", resp.Attempts)
	}
	s := r.Stats()
	if s.Calls != 1 || s.Retries != 2 || s.Exhausted != 0 {
		t.Errorf("stats = %+v", s)
	}
}

func TestRetryStopsOnPermanent(t *testing.T) {
	m := &scriptModel{script: []error{errors.New("permanent"), nil}}
	r := NewRetry(m, RetryConfig{MaxAttempts: 4, BaseDelay: time.Microsecond})
	_, err := r.Complete("p")
	if err == nil {
		t.Fatal("permanent error must not be retried into success")
	}
	if m.callCount() != 1 {
		t.Errorf("calls = %d, want 1 (no retry on permanent)", m.callCount())
	}
	if Attempts(err) != 1 {
		t.Errorf("Attempts(err) = %d", Attempts(err))
	}
}

func TestRetryExhaustsAttempts(t *testing.T) {
	m := &scriptModel{script: []error{transientErr("1"), transientErr("2"), transientErr("3")}}
	r := NewRetry(m, RetryConfig{MaxAttempts: 3, BaseDelay: time.Microsecond})
	_, err := r.Complete("p")
	if err == nil {
		t.Fatal("want exhaustion error")
	}
	var ae *AttemptsError
	if !errors.As(err, &ae) || ae.Attempts != 3 {
		t.Fatalf("want AttemptsError{3}, got %v", err)
	}
	if r.Stats().Exhausted != 1 {
		t.Errorf("exhausted = %d", r.Stats().Exhausted)
	}
}

func TestRetryBudget(t *testing.T) {
	m := &scriptModel{script: []error{
		transientErr("a1"), nil, // call 1: one retry spends the budget
		transientErr("b1"), nil, // call 2: would recover, but no budget left
	}}
	r := NewRetry(m, RetryConfig{MaxAttempts: 3, BaseDelay: time.Microsecond, Budget: 1})
	if _, err := r.Complete("a"); err != nil {
		t.Fatalf("first call should recover: %v", err)
	}
	if _, err := r.Complete("b"); err == nil {
		t.Fatal("budget exhausted: second call must fail without retrying")
	}
	if left := r.Stats().BudgetLeft; left != 0 {
		t.Errorf("budget left = %d", left)
	}
}

func TestRetryBackoffDeterministic(t *testing.T) {
	a := NewRetry(&scriptModel{}, RetryConfig{Seed: 7, BaseDelay: 10 * time.Millisecond})
	b := NewRetry(&scriptModel{}, RetryConfig{Seed: 7, BaseDelay: 10 * time.Millisecond})
	for attempt := 1; attempt <= 3; attempt++ {
		da, db := a.backoff("prompt", attempt), b.backoff("prompt", attempt)
		if da != db {
			t.Fatalf("attempt %d: %s != %s", attempt, da, db)
		}
		base := 10 * time.Millisecond << (attempt - 1)
		if da < base/2 || da >= base*3/2 {
			t.Fatalf("attempt %d: delay %s outside jitter band around %s", attempt, da, base)
		}
	}
}

func TestRetryHonorsCancellation(t *testing.T) {
	m := &scriptModel{script: []error{transientErr("1"), transientErr("2")}}
	r := NewRetry(m, RetryConfig{MaxAttempts: 10, BaseDelay: time.Hour})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := r.CompleteCtx(ctx, "p")
	if err == nil {
		t.Fatal("want error")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want deadline in chain, got %v", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("cancellation did not interrupt backoff sleep")
	}
}

func TestTimeoutConvertsHang(t *testing.T) {
	to := NewTimeout(hangModel{}, 10*time.Millisecond)
	start := time.Now()
	_, err := to.Complete("p")
	var cte *CallTimeoutError
	if !errors.As(err, &cte) {
		t.Fatalf("want CallTimeoutError, got %v", err)
	}
	if !IsTransient(err) {
		t.Error("per-attempt timeout must be transient")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("timeout did not fire")
	}
	if to.Stats().Timeouts != 1 {
		t.Errorf("timeouts = %d", to.Stats().Timeouts)
	}
}

func TestTimeoutCallerCancelNotTransient(t *testing.T) {
	to := NewTimeout(hangModel{}, time.Minute)
	ctx, cancel := context.WithCancel(context.Background())
	go func() { time.Sleep(5 * time.Millisecond); cancel() }()
	_, err := to.CompleteCtx(ctx, "p")
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want Canceled, got %v", err)
	}
	if IsTransient(err) {
		t.Error("caller cancellation must not be transient")
	}
}

func TestTimeoutPlainModelAbandoned(t *testing.T) {
	release := make(chan struct{})
	m := &blockingPlainModel{release: release}
	to := NewTimeout(m, 5*time.Millisecond)
	_, err := to.Complete("p")
	var cte *CallTimeoutError
	if !errors.As(err, &cte) {
		t.Fatalf("want CallTimeoutError, got %v", err)
	}
	close(release) // let the abandoned goroutine finish
}

type blockingPlainModel struct{ release chan struct{} }

func (m *blockingPlainModel) Name() string { return "block" }
func (m *blockingPlainModel) Complete(p string) (llm.Response, error) {
	<-m.release
	return llm.Response{Text: "late"}, nil
}

func TestBreakerLifecycle(t *testing.T) {
	clock := time.Unix(0, 0)
	now := func() time.Time { return clock }
	m := &scriptModel{script: []error{
		errors.New("f1"), errors.New("f2"), // trip
		errors.New("probe fails"), // half-open probe → reopen
		nil, nil,                  // probe succeeds → close, then normal
	}}
	b := NewBreaker(m, BreakerConfig{Failures: 2, Cooldown: time.Second, Probes: 1, now: now})

	if _, err := b.Complete("p"); err == nil {
		t.Fatal("scripted failure expected")
	}
	if b.State() != BreakerClosed {
		t.Fatal("one failure must not trip")
	}
	if _, err := b.Complete("p"); err == nil {
		t.Fatal("scripted failure expected")
	}
	if b.State() != BreakerOpen {
		t.Fatal("two failures must trip")
	}

	// While open within the cooldown, calls are rejected without reaching
	// the model.
	calls := m.callCount()
	if _, err := b.Complete("p"); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("want ErrBreakerOpen, got %v", err)
	}
	if m.callCount() != calls {
		t.Fatal("rejected call must not reach the model")
	}

	// After the cooldown, one probe is admitted; its failure reopens.
	clock = clock.Add(2 * time.Second)
	if _, err := b.Complete("p"); err == nil || errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("probe should reach the model and fail, got %v", err)
	}
	if b.State() != BreakerOpen {
		t.Fatal("failed probe must reopen")
	}

	// Next cooldown: the probe succeeds and closes the breaker.
	clock = clock.Add(2 * time.Second)
	if _, err := b.Complete("p"); err != nil {
		t.Fatalf("successful probe: %v", err)
	}
	if b.State() != BreakerClosed {
		t.Fatal("successful probe must close")
	}

	st := b.Stats()
	if st.Rejected == 0 {
		t.Error("rejections not counted")
	}
	want := []BreakerState{BreakerOpen, BreakerHalfOpen, BreakerOpen, BreakerHalfOpen, BreakerClosed}
	if len(st.Transitions) != len(want) {
		t.Fatalf("transitions = %d, want %d (%+v)", len(st.Transitions), len(want), st.Transitions)
	}
	for i, tr := range st.Transitions {
		if tr.To != want[i] {
			t.Errorf("transition %d to %s, want %s", i, tr.To, want[i])
		}
	}
}

func TestBreakerIgnoresCancellation(t *testing.T) {
	b := NewBreaker(hangModel{}, BreakerConfig{Failures: 1})
	for i := 0; i < 3; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
		_, _ = b.CompleteCtx(ctx, "p")
		cancel()
	}
	if b.State() != BreakerClosed {
		t.Fatal("cancelled calls must not trip the breaker")
	}
}

func TestRateLimitDelaysAndCancels(t *testing.T) {
	m := &scriptModel{}
	l := NewRateLimit(m, 50, 1) // 50/s → 20ms per token after the burst
	if _, err := l.Complete("a"); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := l.Complete("b"); err != nil {
		t.Fatal(err)
	}
	if time.Since(start) < 5*time.Millisecond {
		t.Error("second call should have waited for a token")
	}
	if l.Stats().Delayed == 0 {
		t.Error("delay not counted")
	}

	// A cancelled waiter leaves promptly.
	_, _ = l.Complete("drain")
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	if _, err := l.CompleteCtx(ctx, "c"); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want deadline, got %v", err)
	}
}

func TestStackComposition(t *testing.T) {
	inner := &scriptModel{script: []error{transientErr("1"), nil}}
	st := NewStack(inner, Config{
		Retries:         3,
		RetryBase:       time.Microsecond,
		CallTimeout:     time.Second,
		BreakerFailures: 10,
		RatePerSec:      1e6,
		Burst:           100,
	})
	resp, err := st.Complete("p")
	if err != nil {
		t.Fatal(err)
	}
	if resp.Attempts != 2 {
		t.Errorf("attempts = %d, want 2", resp.Attempts)
	}
	stats := st.Stats()
	if stats.Retry == nil || stats.Timeout == nil || stats.Breaker == nil || stats.RateLimit == nil {
		t.Fatal("all four layers should report stats")
	}
	if stats.Retry.Retries != 1 {
		t.Errorf("retries = %d", stats.Retry.Retries)
	}
	if st.Unwrap() != llm.Model(inner) {
		t.Error("Unwrap must skip the whole chain")
	}
	if st.Name() != "script" {
		t.Error("stack must be name-transparent")
	}
}

func TestStackBreakerShortCircuitsRetries(t *testing.T) {
	// Every call fails permanently; the breaker trips mid-retry and the
	// retry layer stops immediately (ErrBreakerOpen is not transient).
	inner := &scriptModel{script: []error{
		transientErr("1"), transientErr("2"), transientErr("3"), transientErr("4"),
	}}
	st := NewStack(inner, Config{Retries: 9, RetryBase: time.Microsecond, BreakerFailures: 2})
	_, err := st.Complete("p")
	if err == nil {
		t.Fatal("want failure")
	}
	if !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("want breaker rejection terminating the retries, got %v", err)
	}
	if got := inner.callCount(); got != 2 {
		t.Errorf("model calls = %d, want 2 (breaker tripped)", got)
	}
}

func TestZeroConfigStackIsTransparent(t *testing.T) {
	cfg := Config{}
	if cfg.Enabled() {
		t.Fatal("zero config must report disabled")
	}
	inner := &scriptModel{}
	st := NewStack(inner, cfg)
	if _, err := st.Complete("p"); err != nil {
		t.Fatal(err)
	}
	stats := st.Stats()
	if stats.Retry != nil || stats.Timeout != nil || stats.Breaker != nil || stats.RateLimit != nil {
		t.Fatal("no layers should be installed")
	}
}
