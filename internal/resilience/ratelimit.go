package resilience

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"github.com/graphrules/graphrules/internal/llm"
)

// RateLimitStats counts the limiter's admissions and waiting.
type RateLimitStats struct {
	Calls int64
	// Delayed is how many calls had to wait for a token.
	Delayed int64
	// TotalWait is the cumulative time spent waiting, in nanoseconds.
	TotalWait int64
}

// RateLimit wraps a model with a token-bucket limiter: calls acquire one
// token each, tokens refill at Rate per second up to Burst. Waiting is
// context-aware — a cancelled caller leaves the queue immediately and
// consumes no token.
type RateLimit struct {
	inner llm.Model
	rate  float64
	burst float64

	mu     sync.Mutex
	tokens float64
	last   time.Time
	now    func() time.Time // test clock override

	calls, delayed, totalWait atomic.Int64
}

// NewRateLimit wraps model with a token bucket of rate calls per second
// and the given burst (minimum 1). rate <= 0 disables limiting.
func NewRateLimit(model llm.Model, rate float64, burst int) *RateLimit {
	if burst < 1 {
		burst = 1
	}
	return &RateLimit{
		inner:  model,
		rate:   rate,
		burst:  float64(burst),
		tokens: float64(burst),
		now:    time.Now,
	}
}

// Name implements llm.Model; the middleware is transparent.
func (l *RateLimit) Name() string { return l.inner.Name() }

// Unwrap exposes the wrapped model (llm.ModelWrapper).
func (l *RateLimit) Unwrap() llm.Model { return l.inner }

// Stats returns the limiter counters so far.
func (l *RateLimit) Stats() RateLimitStats {
	return RateLimitStats{
		Calls:     l.calls.Load(),
		Delayed:   l.delayed.Load(),
		TotalWait: l.totalWait.Load(),
	}
}

// acquire blocks until a token is available or ctx is done.
func (l *RateLimit) acquire(ctx context.Context) error {
	waited := int64(0)
	defer func() {
		if waited > 0 {
			l.delayed.Add(1)
			l.totalWait.Add(waited)
		}
	}()
	for {
		l.mu.Lock()
		now := l.now()
		if l.last.IsZero() {
			l.last = now
		}
		l.tokens += now.Sub(l.last).Seconds() * l.rate
		if l.tokens > l.burst {
			l.tokens = l.burst
		}
		l.last = now
		if l.tokens >= 1 {
			l.tokens--
			l.mu.Unlock()
			return nil
		}
		wait := time.Duration((1 - l.tokens) / l.rate * float64(time.Second))
		l.mu.Unlock()
		waited += int64(wait)
		if err := sleepCtx(ctx, wait); err != nil {
			return err
		}
	}
}

// Complete implements llm.Model.
func (l *RateLimit) Complete(promptText string) (llm.Response, error) {
	return l.CompleteCtx(context.Background(), promptText)
}

// CompleteCtx implements llm.ContextModel.
func (l *RateLimit) CompleteCtx(ctx context.Context, promptText string) (llm.Response, error) {
	l.calls.Add(1)
	if l.rate > 0 {
		if err := l.acquire(ctx); err != nil {
			return llm.Response{}, err
		}
	}
	return llm.CompleteCtx(ctx, l.inner, promptText)
}
