package resilience

import (
	"context"
	"sync/atomic"
	"time"

	"github.com/graphrules/graphrules/internal/llm"
)

// TimeoutStats counts the timeout middleware's outcomes.
type TimeoutStats struct {
	Calls    int64
	Timeouts int64
	// MaxLatency and TotalLatency measure completed (non-timed-out)
	// attempts, in nanoseconds.
	MaxLatency   int64
	TotalLatency int64
}

// Timeout wraps a model with a per-call deadline. Context-aware models
// (llm.ContextModel) are cancelled in-band; plain models run on a helper
// goroutine and are abandoned when the deadline fires — their eventual
// result is discarded, so only wrap a plain model whose calls terminate on
// their own.
type Timeout struct {
	inner llm.Model
	d     time.Duration

	calls, timeouts, maxLat, totalLat atomic.Int64
}

// NewTimeout wraps model with a per-call deadline; d <= 0 disables the
// deadline (calls pass through).
func NewTimeout(model llm.Model, d time.Duration) *Timeout {
	return &Timeout{inner: model, d: d}
}

// Name implements llm.Model; the middleware is transparent.
func (t *Timeout) Name() string { return t.inner.Name() }

// Unwrap exposes the wrapped model (llm.ModelWrapper).
func (t *Timeout) Unwrap() llm.Model { return t.inner }

// Stats returns the timeout counters so far.
func (t *Timeout) Stats() TimeoutStats {
	return TimeoutStats{
		Calls:        t.calls.Load(),
		Timeouts:     t.timeouts.Load(),
		MaxLatency:   t.maxLat.Load(),
		TotalLatency: t.totalLat.Load(),
	}
}

func (t *Timeout) observe(start time.Time) {
	lat := int64(time.Since(start))
	t.totalLat.Add(lat)
	for {
		max := t.maxLat.Load()
		if lat <= max || t.maxLat.CompareAndSwap(max, lat) {
			return
		}
	}
}

// Complete implements llm.Model.
func (t *Timeout) Complete(promptText string) (llm.Response, error) {
	return t.CompleteCtx(context.Background(), promptText)
}

// CompleteCtx implements llm.ContextModel. A deadline expiry is surfaced
// as a transient *CallTimeoutError so the retry layer re-attempts it; a
// cancellation of the caller's own ctx is returned as-is (not transient).
func (t *Timeout) CompleteCtx(ctx context.Context, promptText string) (llm.Response, error) {
	t.calls.Add(1)
	start := time.Now()
	if t.d <= 0 {
		resp, err := llm.CompleteCtx(ctx, t.inner, promptText)
		t.observe(start)
		return resp, err
	}
	cctx, cancel := context.WithTimeout(ctx, t.d)
	defer cancel()

	if cm, ok := t.inner.(llm.ContextModel); ok {
		resp, err := cm.CompleteCtx(cctx, promptText)
		if err != nil && cctx.Err() != nil && ctx.Err() == nil {
			t.timeouts.Add(1)
			return llm.Response{}, &CallTimeoutError{Timeout: t.d}
		}
		t.observe(start)
		return resp, err
	}

	// Plain model: race the blocking call against the deadline. The
	// helper goroutine finishes on its own schedule; its result is
	// dropped once abandoned.
	type outcome struct {
		resp llm.Response
		err  error
	}
	ch := make(chan outcome, 1)
	go func() {
		resp, err := t.inner.Complete(promptText)
		ch <- outcome{resp, err}
	}()
	select {
	case o := <-ch:
		t.observe(start)
		return o.resp, o.err
	case <-cctx.Done():
		if ctx.Err() != nil {
			return llm.Response{}, ctx.Err()
		}
		t.timeouts.Add(1)
		return llm.Response{}, &CallTimeoutError{Timeout: t.d}
	}
}
