package resilience

import (
	"context"
	"time"

	"github.com/graphrules/graphrules/internal/llm"
)

// Config selects which middleware a Stack installs. Zero values disable
// the corresponding layer, so the zero Config is a transparent stack.
type Config struct {
	// Retries is how many extra attempts follow a failed first try
	// (MaxAttempts = Retries + 1); 0 disables the retry layer.
	Retries int
	// RetryBase / RetryMax tune the backoff (see RetryConfig).
	RetryBase time.Duration
	RetryMax  time.Duration
	// RetryBudget caps total retries across all calls (0 = unlimited).
	RetryBudget int64
	// CallTimeout is the per-attempt deadline; 0 disables the timeout
	// layer.
	CallTimeout time.Duration
	// BreakerFailures enables the circuit breaker: that many consecutive
	// failures open it; 0 disables the layer.
	BreakerFailures int
	BreakerCooldown time.Duration
	BreakerProbes   int
	// RatePerSec enables the token-bucket limiter; 0 disables the layer.
	RatePerSec float64
	Burst      int
	// Seed drives the retry layer's deterministic jitter.
	Seed int64
}

// Enabled reports whether the config installs at least one layer.
func (c Config) Enabled() bool {
	return c.Retries > 0 || c.CallTimeout > 0 || c.BreakerFailures > 0 || c.RatePerSec > 0
}

// StackStats aggregates the per-layer counters of one Stack; a nil field
// means the layer is not installed.
type StackStats struct {
	Retry     *RetryStats     `json:"retry,omitempty"`
	Timeout   *TimeoutStats   `json:"timeout,omitempty"`
	Breaker   *BreakerStats   `json:"breaker,omitempty"`
	RateLimit *RateLimitStats `json:"rateLimit,omitempty"`
}

// Stack is the canonical middleware composition around a model:
//
//	RateLimit → Retry → Breaker → Timeout → model
//
// Each retry attempt passes through the breaker (so consecutive failing
// attempts trip it) and gets its own per-call deadline; an open breaker
// is not a transient error, so the retry layer stops burning attempts the
// moment the breaker rejects. The rate limiter sits outside retry: a
// retried call re-enters the queue only once per logical completion.
type Stack struct {
	outer llm.Model
	inner llm.Model

	retry   *Retry
	timeout *Timeout
	breaker *Breaker
	limiter *RateLimit
}

// NewStack composes the configured layers around model. A zero cfg
// returns a transparent pass-through stack.
func NewStack(model llm.Model, cfg Config) *Stack {
	s := &Stack{inner: model}
	m := model
	if cfg.CallTimeout > 0 {
		s.timeout = NewTimeout(m, cfg.CallTimeout)
		m = s.timeout
	}
	if cfg.BreakerFailures > 0 {
		s.breaker = NewBreaker(m, BreakerConfig{
			Failures: cfg.BreakerFailures,
			Cooldown: cfg.BreakerCooldown,
			Probes:   cfg.BreakerProbes,
		})
		m = s.breaker
	}
	if cfg.Retries > 0 {
		s.retry = NewRetry(m, RetryConfig{
			MaxAttempts: cfg.Retries + 1,
			BaseDelay:   cfg.RetryBase,
			MaxDelay:    cfg.RetryMax,
			Budget:      cfg.RetryBudget,
			Seed:        cfg.Seed,
		})
		m = s.retry
	}
	if cfg.RatePerSec > 0 {
		s.limiter = NewRateLimit(m, cfg.RatePerSec, cfg.Burst)
		m = s.limiter
	}
	s.outer = m
	return s
}

// Name implements llm.Model; the stack is transparent.
func (s *Stack) Name() string { return s.inner.Name() }

// Unwrap exposes the wrapped model (llm.ModelWrapper), skipping the
// middleware chain entirely.
func (s *Stack) Unwrap() llm.Model { return s.inner }

// Breaker returns the breaker layer, or nil when not installed.
func (s *Stack) Breaker() *Breaker { return s.breaker }

// Stats snapshots every installed layer's counters.
func (s *Stack) Stats() StackStats {
	var st StackStats
	if s.retry != nil {
		v := s.retry.Stats()
		st.Retry = &v
	}
	if s.timeout != nil {
		v := s.timeout.Stats()
		st.Timeout = &v
	}
	if s.breaker != nil {
		v := s.breaker.Stats()
		st.Breaker = &v
	}
	if s.limiter != nil {
		v := s.limiter.Stats()
		st.RateLimit = &v
	}
	return st
}

// Complete implements llm.Model.
func (s *Stack) Complete(promptText string) (llm.Response, error) {
	return llm.CompleteCtx(context.Background(), s.outer, promptText)
}

// CompleteCtx implements llm.ContextModel.
func (s *Stack) CompleteCtx(ctx context.Context, promptText string) (llm.Response, error) {
	return llm.CompleteCtx(ctx, s.outer, promptText)
}
