package resilience

import (
	"context"
	"hash/fnv"
	"sync/atomic"
	"time"

	"github.com/graphrules/graphrules/internal/llm"
)

// RetryConfig parameterizes the retry middleware.
type RetryConfig struct {
	// MaxAttempts is the total attempts per call, first try included
	// (default 3).
	MaxAttempts int
	// BaseDelay is the backoff before the first retry (default 25ms); each
	// further retry doubles it, capped at MaxDelay (default 2s).
	BaseDelay time.Duration
	MaxDelay  time.Duration
	// Budget caps the total retries (not first attempts) the wrapper will
	// ever spend across all calls; 0 means unlimited. When the budget is
	// exhausted, calls get exactly one attempt — a runaway-failure
	// backstop for long-lived services.
	Budget int64
	// Seed drives the deterministic backoff jitter: the delay for a given
	// (prompt, attempt) pair is identical across runs and goroutine
	// schedules.
	Seed int64
	// RetryIf classifies retryable errors (default IsTransient).
	RetryIf func(error) bool
}

func (c RetryConfig) withDefaults() RetryConfig {
	if c.MaxAttempts == 0 {
		c.MaxAttempts = 3
	}
	if c.BaseDelay == 0 {
		c.BaseDelay = 25 * time.Millisecond
	}
	if c.MaxDelay == 0 {
		c.MaxDelay = 2 * time.Second
	}
	if c.RetryIf == nil {
		c.RetryIf = IsTransient
	}
	return c
}

// RetryStats counts the retry middleware's work.
type RetryStats struct {
	// Calls is how many logical completions were requested.
	Calls int64
	// Retries is how many extra attempts were spent.
	Retries int64
	// Exhausted is how many calls failed after all attempts.
	Exhausted int64
	// BudgetLeft is the remaining global retry budget (negative means
	// unlimited).
	BudgetLeft int64
}

// Retry wraps a model with bounded, classified, backoff retries.
type Retry struct {
	inner llm.Model
	cfg   RetryConfig

	calls, retries, exhausted atomic.Int64
	budgetLeft                atomic.Int64 // meaningful only when cfg.Budget > 0
}

// NewRetry wraps model with retry middleware.
func NewRetry(model llm.Model, cfg RetryConfig) *Retry {
	r := &Retry{inner: model, cfg: cfg.withDefaults()}
	r.budgetLeft.Store(r.cfg.Budget)
	return r
}

// Name implements llm.Model; the middleware is transparent.
func (r *Retry) Name() string { return r.inner.Name() }

// Unwrap exposes the wrapped model (llm.ModelWrapper).
func (r *Retry) Unwrap() llm.Model { return r.inner }

// Stats returns the retry counters so far.
func (r *Retry) Stats() RetryStats {
	s := RetryStats{
		Calls:      r.calls.Load(),
		Retries:    r.retries.Load(),
		Exhausted:  r.exhausted.Load(),
		BudgetLeft: -1,
	}
	if r.cfg.Budget > 0 {
		s.BudgetLeft = r.budgetLeft.Load()
	}
	return s
}

// spendBudget reserves one retry from the global budget; it reports false
// when the budget is exhausted.
func (r *Retry) spendBudget() bool {
	if r.cfg.Budget <= 0 {
		return true
	}
	for {
		left := r.budgetLeft.Load()
		if left <= 0 {
			return false
		}
		if r.budgetLeft.CompareAndSwap(left, left-1) {
			return true
		}
	}
}

// backoff returns the delay before retry #attempt (1-based) of a call,
// with a deterministic jitter factor in [0.5, 1.5) derived from the seed,
// the prompt and the attempt number.
func (r *Retry) backoff(promptText string, attempt int) time.Duration {
	d := r.cfg.BaseDelay << (attempt - 1)
	if d > r.cfg.MaxDelay || d <= 0 {
		d = r.cfg.MaxDelay
	}
	h := fnv.New64a()
	h.Write([]byte(promptText))
	var buf [16]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(r.cfg.Seed >> (8 * i))
		buf[8+i] = byte(attempt >> (8 * i))
	}
	h.Write(buf[:])
	factor := 0.5 + float64(h.Sum64()%1024)/1024.0
	return time.Duration(float64(d) * factor)
}

// Complete implements llm.Model.
func (r *Retry) Complete(promptText string) (llm.Response, error) {
	return r.CompleteCtx(context.Background(), promptText)
}

// CompleteCtx implements llm.ContextModel: it attempts the call up to
// MaxAttempts times, backing off between attempts, and retries only
// errors RetryIf classifies as transient. The caller's ctx always wins —
// cancellation aborts the backoff sleep immediately.
func (r *Retry) CompleteCtx(ctx context.Context, promptText string) (llm.Response, error) {
	r.calls.Add(1)
	var lastErr error
	attempt := 0
	for attempt < r.cfg.MaxAttempts {
		attempt++
		resp, err := llm.CompleteCtx(ctx, r.inner, promptText)
		if err == nil {
			if resp.Attempts < attempt {
				resp.Attempts = attempt
			}
			return resp, nil
		}
		lastErr = err
		if ctx.Err() != nil || !r.cfg.RetryIf(err) || attempt == r.cfg.MaxAttempts {
			break
		}
		if !r.spendBudget() {
			break
		}
		r.retries.Add(1)
		if err := sleepCtx(ctx, r.backoff(promptText, attempt)); err != nil {
			lastErr = err
			break
		}
	}
	r.exhausted.Add(1)
	return llm.Response{}, &AttemptsError{Attempts: attempt, Err: lastErr}
}
