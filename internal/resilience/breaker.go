package resilience

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/graphrules/graphrules/internal/llm"
)

// BreakerState is the circuit breaker's position.
type BreakerState uint8

const (
	// BreakerClosed passes calls through, counting consecutive failures.
	BreakerClosed BreakerState = iota
	// BreakerOpen rejects calls without attempting them until the
	// cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen lets a bounded number of probe calls through; a
	// probe failure reopens, enough probe successes close.
	BreakerHalfOpen
)

// String returns the conventional state name.
func (s BreakerState) String() string {
	switch s {
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// BreakerTransition records one state change.
type BreakerTransition struct {
	From, To BreakerState
	At       time.Time
}

// BreakerConfig parameterizes the circuit breaker.
type BreakerConfig struct {
	// Failures is how many consecutive failures trip the breaker
	// (default 5).
	Failures int
	// Cooldown is how long the breaker stays open before probing
	// (default 1s).
	Cooldown time.Duration
	// Probes is how many consecutive half-open successes close the
	// breaker (default 1).
	Probes int

	// now overrides the clock in tests.
	now func() time.Time
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Failures == 0 {
		c.Failures = 5
	}
	if c.Cooldown == 0 {
		c.Cooldown = time.Second
	}
	if c.Probes == 0 {
		c.Probes = 1
	}
	if c.now == nil {
		c.now = time.Now
	}
	return c
}

// BreakerStats is a snapshot of the breaker's state and history.
type BreakerStats struct {
	State       BreakerState
	Rejected    int64 // calls refused while open / half-open saturated
	Transitions []BreakerTransition
}

// Breaker wraps a model with a circuit breaker: after Failures
// consecutive errors it fails fast for Cooldown, then half-opens and lets
// probe calls decide whether the backend recovered. Context cancellations
// do not count as backend failures.
type Breaker struct {
	inner llm.Model
	cfg   BreakerConfig

	mu          sync.Mutex
	state       BreakerState
	failures    int // consecutive failures while closed
	successes   int // consecutive probe successes while half-open
	probing     int // probes in flight while half-open
	openedAt    time.Time
	transitions []BreakerTransition

	rejected atomic.Int64
}

// NewBreaker wraps model with a circuit breaker.
func NewBreaker(model llm.Model, cfg BreakerConfig) *Breaker {
	return &Breaker{inner: model, cfg: cfg.withDefaults()}
}

// Name implements llm.Model; the middleware is transparent.
func (b *Breaker) Name() string { return b.inner.Name() }

// Unwrap exposes the wrapped model (llm.ModelWrapper).
func (b *Breaker) Unwrap() llm.Model { return b.inner }

// State returns the breaker's current position.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Stats returns a snapshot of the breaker's state, rejection count and
// full transition history.
func (b *Breaker) Stats() BreakerStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return BreakerStats{
		State:       b.state,
		Rejected:    b.rejected.Load(),
		Transitions: append([]BreakerTransition(nil), b.transitions...),
	}
}

// transitionLocked moves the breaker to a new state, recording it.
func (b *Breaker) transitionLocked(to BreakerState) {
	if b.state == to {
		return
	}
	b.transitions = append(b.transitions, BreakerTransition{From: b.state, To: to, At: b.cfg.now()})
	b.state = to
	b.failures = 0
	b.successes = 0
	if to == BreakerOpen {
		b.openedAt = b.cfg.now()
	}
}

// admit decides whether a call may proceed, advancing open → half-open
// when the cooldown has elapsed.
func (b *Breaker) admit() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerOpen:
		if b.cfg.now().Sub(b.openedAt) < b.cfg.Cooldown {
			b.rejected.Add(1)
			return fmt.Errorf("%w (cooling down, %d rejection(s) so far)", ErrBreakerOpen, b.rejected.Load())
		}
		b.transitionLocked(BreakerHalfOpen)
		b.probing = 1
		return nil
	case BreakerHalfOpen:
		if b.probing >= b.cfg.Probes {
			b.rejected.Add(1)
			return fmt.Errorf("%w (half-open, probe slots busy)", ErrBreakerOpen)
		}
		b.probing++
		return nil
	default:
		return nil
	}
}

// settle records a call outcome. ctxDone suppresses failure accounting:
// a cancelled call says nothing about the backend's health.
func (b *Breaker) settle(err error, ctxDone bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerHalfOpen && b.probing > 0 {
		b.probing--
	}
	if ctxDone {
		return
	}
	switch {
	case err == nil:
		if b.state == BreakerHalfOpen {
			b.successes++
			if b.successes >= b.cfg.Probes {
				b.transitionLocked(BreakerClosed)
			}
			return
		}
		b.failures = 0
	default:
		if b.state == BreakerHalfOpen {
			b.transitionLocked(BreakerOpen)
			return
		}
		b.failures++
		if b.failures >= b.cfg.Failures {
			b.transitionLocked(BreakerOpen)
		}
	}
}

// Complete implements llm.Model.
func (b *Breaker) Complete(promptText string) (llm.Response, error) {
	return b.CompleteCtx(context.Background(), promptText)
}

// CompleteCtx implements llm.ContextModel.
func (b *Breaker) CompleteCtx(ctx context.Context, promptText string) (llm.Response, error) {
	if err := b.admit(); err != nil {
		return llm.Response{}, err
	}
	resp, err := llm.CompleteCtx(ctx, b.inner, promptText)
	b.settle(err, ctx.Err() != nil)
	return resp, err
}
