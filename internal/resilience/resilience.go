// Package resilience hardens the pipeline's LLM calls. It provides
// composable llm.Model middleware — Retry (exponential backoff with
// deterministic jitter), Timeout (per-attempt deadline), Breaker (circuit
// breaker with half-open probes) and RateLimit (token bucket) — plus a
// Stack that composes them in the canonical order. All wrappers are
// context-aware, safe for concurrent use, and surface per-call attempt and
// latency statistics, so a mining run can report exactly how flaky its
// backend was.
//
// Error classification follows one convention: an error is retryable when
// some error in its chain implements `Transient() bool` returning true
// (see IsTransient). Transport layers mark their transient failures (e.g.
// llm.TransientError, CallTimeoutError); everything else — including
// context cancellation and an open breaker — fails fast.
package resilience

import (
	"context"
	"errors"
	"fmt"
	"time"

	"github.com/graphrules/graphrules/internal/llm"
)

// transient is the structural marker retryable errors implement.
type transient interface{ Transient() bool }

// IsTransient reports whether err is retryable: some error in its chain
// implements Transient() bool and returns true. Context cancellation and
// deadline expiry of the *caller's* context are never transient (the
// per-attempt CallTimeoutError is marked transient explicitly).
func IsTransient(err error) bool {
	if err == nil {
		return false
	}
	var t transient
	if errors.As(err, &t) {
		return t.Transient()
	}
	return false
}

// MarkTransient wraps err so IsTransient reports true. A nil err returns
// nil.
func MarkTransient(err error) error {
	if err == nil {
		return nil
	}
	return &llm.TransientError{Err: err}
}

// ErrBreakerOpen is returned (wrapped) when the circuit breaker rejects a
// call without attempting it. It is not transient: callers should shed
// load or degrade instead of hammering a failing backend.
var ErrBreakerOpen = errors.New("resilience: circuit breaker open")

// CallTimeoutError reports one attempt that exceeded its per-call
// deadline. It is transient — a hung call is the classic retryable fault —
// and unwraps to context.DeadlineExceeded for errors.Is checks.
type CallTimeoutError struct {
	Timeout time.Duration
}

func (e *CallTimeoutError) Error() string {
	return fmt.Sprintf("resilience: model call exceeded %s timeout", e.Timeout)
}
func (e *CallTimeoutError) Unwrap() error   { return context.DeadlineExceeded }
func (e *CallTimeoutError) Transient() bool { return true }

// AttemptsError reports a call that failed for good after n attempts; it
// wraps the last attempt's error.
type AttemptsError struct {
	Attempts int
	Err      error
}

func (e *AttemptsError) Error() string {
	return fmt.Sprintf("after %d attempt(s): %v", e.Attempts, e.Err)
}
func (e *AttemptsError) Unwrap() error { return e.Err }

// Attempts extracts the attempt count from a failed call's error chain,
// defaulting to 1 (a bare error means a single attempt).
func Attempts(err error) int {
	var ae *AttemptsError
	if errors.As(err, &ae) && ae.Attempts > 0 {
		return ae.Attempts
	}
	return 1
}

// sleepCtx blocks for d or until ctx is done, returning ctx.Err() in the
// latter case.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
