// Package datasets generates the paper's three evaluation property graphs
// (WWC2019, Cybersecurity, Twitter) as deterministic synthetic stand-ins for
// the Neo4j example datasets the study uses.
//
// Each generator reproduces Table 1 exactly — node count, edge count, number
// of node labels and number of edge labels — and mirrors the real datasets'
// schemas (labels, relationship types, property keys). A configurable
// fraction of elements carries injected consistency violations (missing
// required properties, duplicate identifiers, self-follows, temporal
// inversions, malformed formats, wrong endpoint labels) so that mined rules
// score below 100% confidence, as in the paper.
package datasets

import (
	"fmt"
	"math/rand"
	"sort"

	"github.com/graphrules/graphrules/internal/graph"
)

// Options configures dataset generation.
type Options struct {
	// Seed drives all randomness; the same seed yields a byte-identical
	// graph.
	Seed int64
	// ViolationRate is the approximate fraction of eligible elements that
	// receive an injected inconsistency (0 disables injection).
	ViolationRate float64
}

// DefaultOptions are the options used throughout the benchmark harness.
func DefaultOptions() Options {
	return Options{Seed: 42, ViolationRate: 0.03}
}

// Info describes one dataset as reported in Table 1.
type Info struct {
	Name       string
	Nodes      int
	Edges      int
	NodeLabels int
	EdgeLabels int
}

// Table1 lists the paper's dataset statistics.
var Table1 = []Info{
	{Name: "WWC2019", Nodes: 2468, Edges: 14799, NodeLabels: 5, EdgeLabels: 9},
	{Name: "Cybersecurity", Nodes: 953, Edges: 4838, NodeLabels: 7, EdgeLabels: 16},
	{Name: "Twitter", Nodes: 43325, Edges: 56493, NodeLabels: 6, EdgeLabels: 8},
}

// Generator builds one dataset.
type Generator func(Options) *graph.Graph

var registry = map[string]Generator{
	"WWC2019":       WWC2019,
	"Cybersecurity": Cybersecurity,
	"Twitter":       Twitter,
}

// Names returns the available dataset names in Table 1 order.
func Names() []string {
	return []string{"WWC2019", "Cybersecurity", "Twitter"}
}

// ByName returns the generator for a dataset name (case-sensitive).
func ByName(name string) (Generator, error) {
	g, ok := registry[name]
	if !ok {
		avail := Names()
		sort.Strings(avail)
		return nil, fmt.Errorf("datasets: unknown dataset %q (available: %v)", name, avail)
	}
	return g, nil
}

// InfoFor returns the Table 1 row for a dataset name.
func InfoFor(name string) (Info, error) {
	for _, in := range Table1 {
		if in.Name == name {
			return in, nil
		}
	}
	return Info{}, fmt.Errorf("datasets: unknown dataset %q", name)
}

// violator decides which elements receive injected inconsistencies.
type violator struct {
	rng  *rand.Rand
	rate float64
	// count tracks injections per category for test introspection.
	count map[string]int
}

func newViolator(seed int64, rate float64) *violator {
	return &violator{rng: rand.New(rand.NewSource(seed)), rate: rate, count: map[string]int{}}
}

// hit reports whether to inject a violation of the named category.
func (v *violator) hit(category string) bool {
	if v.rate <= 0 {
		return false
	}
	if v.rng.Float64() < v.rate {
		v.count[category]++
		return true
	}
	return false
}

// pick returns a uniform index in [0, n).
func pick(rng *rand.Rand, n int) int {
	if n <= 0 {
		return 0
	}
	return rng.Intn(n)
}

// zipfPicker returns a heavy-tailed index sampler over [0, n): element 0 is
// the hottest. Real social and directory graphs are dominated by hubs
// (celebrity accounts, Domain Admins groups), which is also what makes some
// incident-encoding blocks outgrow the window overlap (§4.5's broken
// patterns).
func zipfPicker(rng *rand.Rand, n int) func() int {
	z := rand.NewZipf(rng, 1.4, 4, uint64(n-1))
	return func() int { return int(z.Uint64()) }
}

// firstNames and lastNames feed deterministic human-readable name pools.
var firstNames = []string{
	"Alex", "Sam", "Jordan", "Taylor", "Morgan", "Casey", "Riley", "Avery",
	"Quinn", "Harper", "Rowan", "Emerson", "Finley", "Skyler", "Dakota",
	"Reese", "Kendall", "Payton", "Sage", "Tatum",
}

var lastNames = []string{
	"Smith", "Johnson", "Williams", "Brown", "Jones", "Garcia", "Miller",
	"Davis", "Rodriguez", "Martinez", "Hernandez", "Lopez", "Gonzalez",
	"Wilson", "Anderson", "Thomas", "Moore", "Martin", "Lee", "Thompson",
}

// personName returns a deterministic human-like name for index i.
func personName(i int) string {
	return fmt.Sprintf("%s %s %d", firstNames[i%len(firstNames)], lastNames[(i/len(firstNames))%len(lastNames)], i)
}

// isoDate renders day offset d (from 2019-06-07, the WWC2019 opening day)
// as an ISO date string. Offsets beyond the month roll into July.
func isoDate(d int) string {
	day := 7 + d
	month := 6
	for day > 30 {
		day -= 30
		month++
	}
	return fmt.Sprintf("2019-%02d-%02d", month, day)
}
