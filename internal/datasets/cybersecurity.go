package datasets

import (
	"fmt"
	"math/rand"

	"github.com/graphrules/graphrules/internal/graph"
)

// Cybersecurity node budget (total 953, 7 labels).
const (
	cyUsers     = 400
	cyComputers = 300
	cyGroups    = 150
	cyOUs       = 60
	cyGPOs      = 25
	cyDomains   = 3
	cyServices  = 953 - cyUsers - cyComputers - cyGroups - cyOUs - cyGPOs - cyDomains
)

// Cybersecurity edge budget (total 4838, 16 labels). APPLIES_TO absorbs the
// remainder.
const (
	cyMemberOf      = 900 // User -> Group
	cyAdminTo       = 500 // Group -> Computer
	cyHasSession    = 600 // Computer -> User
	cyContains      = 400 // OU -> Computer
	cyGpLink        = 60  // GPO -> OU
	cyTrustedBy     = 3   // Domain -> Domain
	cyOwns          = 300 // User -> Computer
	cyCanRDP        = 500 // User -> Computer
	cyExecuteDCOM   = 300 // User -> Computer
	cyDelegate      = 200 // User -> Computer (ALLOWED_TO_DELEGATE)
	cyGetChanges    = 50  // User -> Domain
	cyGetChangesAll = 40  // User -> Domain
	cyAddMember     = 200 // User -> Group
	cyForcePwd      = 200 // User -> User (FORCE_CHANGE_PASSWORD)
	cySQLAdmin      = 85  // User -> Computer
	cyAppliesTo     = 4838 - cyMemberOf - cyAdminTo - cyHasSession - cyContains -
		cyGpLink - cyTrustedBy - cyOwns - cyCanRDP - cyExecuteDCOM - cyDelegate -
		cyGetChanges - cyGetChangesAll - cyAddMember - cyForcePwd - cySQLAdmin
)

var cyOSNames = []string{
	"Windows Server 2019", "Windows Server 2016", "Windows 10 Enterprise",
	"Windows 10 Pro", "Windows Server 2012 R2",
}

var cyDomainNames = []string{"corp.example.com", "dev.example.com", "prod.example.com"}

// Cybersecurity generates an active-directory-style graph: users, groups,
// domains, policies, OUs, computers and services, wired by sixteen
// relationship types (BloodHound-like schema).
//
// Injected violations:
//   - `owned` property holding a string ("yes") instead of a boolean
//   - `domain` property not matching the domain-name format
//   - users who are MEMBER_OF no group (dangling accounts)
//   - FORCE_CHANGE_PASSWORD self-edges
func Cybersecurity(opts Options) *graph.Graph {
	rng := rand.New(rand.NewSource(opts.Seed))
	vio := newViolator(opts.Seed+2, opts.ViolationRate)
	g := graph.New("Cybersecurity")

	domains := make([]*graph.Node, cyDomains)
	for i := range domains {
		name := cyDomainNames[i]
		domainProp := graph.NewString(name)
		// Violation: malformed domain string.
		if vio.hit("domain-bad-format") {
			domainProp = graph.NewString("not a domain!")
		}
		domains[i] = g.AddNode([]string{"Domain"}, graph.Props{
			"id":              graph.NewInt(int64(1 + i)),
			"name":            graph.NewString(name),
			"domain":          domainProp,
			"functionallevel": graph.NewString("2016"),
		})
	}

	users := make([]*graph.Node, cyUsers)
	for i := range users {
		var owned graph.Value = graph.NewBool(rng.Intn(10) == 0)
		// Violation: owned must be a boolean.
		if vio.hit("owned-not-boolean") {
			owned = graph.NewString("yes")
		}
		dom := cyDomainNames[i%cyDomains]
		domProp := graph.NewString(dom)
		if vio.hit("user-domain-bad-format") {
			domProp = graph.NewString("corp_example")
		}
		users[i] = g.AddNode([]string{"User"}, graph.Props{
			"id":         graph.NewInt(int64(1000 + i)),
			"name":       graph.NewString(fmt.Sprintf("%s@%s", personName(i), dom)),
			"domain":     domProp,
			"owned":      owned,
			"enabled":    graph.NewBool(rng.Intn(20) != 0),
			"pwdlastset": graph.NewInt(int64(1500000000 + rng.Intn(100000000))),
		})
	}

	computers := make([]*graph.Node, cyComputers)
	for i := range computers {
		computers[i] = g.AddNode([]string{"Computer"}, graph.Props{
			"id":    graph.NewInt(int64(5000 + i)),
			"name":  graph.NewString(fmt.Sprintf("WS%04d.%s", i, cyDomainNames[i%cyDomains])),
			"os":    graph.NewString(cyOSNames[i%len(cyOSNames)]),
			"owned": graph.NewBool(rng.Intn(15) == 0),
		})
	}

	groups := make([]*graph.Node, cyGroups)
	for i := range groups {
		groups[i] = g.AddNode([]string{"Group"}, graph.Props{
			"id":     graph.NewInt(int64(8000 + i)),
			"name":   graph.NewString(fmt.Sprintf("GROUP-%03d@%s", i, cyDomainNames[i%cyDomains])),
			"domain": graph.NewString(cyDomainNames[i%cyDomains]),
		})
	}

	ous := make([]*graph.Node, cyOUs)
	for i := range ous {
		ous[i] = g.AddNode([]string{"OU"}, graph.Props{
			"id":                graph.NewInt(int64(9000 + i)),
			"name":              graph.NewString(fmt.Sprintf("OU-%02d", i)),
			"blocksinheritance": graph.NewBool(i%7 == 0),
		})
	}

	gpos := make([]*graph.Node, cyGPOs)
	for i := range gpos {
		gpos[i] = g.AddNode([]string{"GPO"}, graph.Props{
			"id":   graph.NewInt(int64(9500 + i)),
			"name": graph.NewString(fmt.Sprintf("GPO-%02d", i)),
		})
	}

	services := make([]*graph.Node, cyServices)
	for i := range services {
		services[i] = g.AddNode([]string{"Service"}, graph.Props{
			"id":   graph.NewInt(int64(9800 + i)),
			"name": graph.NewString(fmt.Sprintf("svc-%02d", i)),
			"port": graph.NewInt(int64(1024 + i*7)),
		})
	}

	// MEMBER_OF: users join groups. The violation leaves a contiguous block
	// of users (the tail indexes) out of every group.
	memberless := map[int]bool{}
	for i := 0; i < cyUsers; i++ {
		if vio.hit("user-no-group") {
			memberless[i] = true
		}
	}
	// Group membership is heavy-tailed: a few groups (Domain Users-style)
	// hold most accounts.
	groupTarget := zipfPicker(rng, cyGroups)
	added := 0
	for added < cyMemberOf {
		u := pick(rng, cyUsers)
		if memberless[u] {
			continue
		}
		g.MustAddEdge(users[u].ID, groups[groupTarget()].ID, []string{"MEMBER_OF"}, nil)
		added++
	}

	addMany := func(n int, label string, from func() graph.ID, to func() graph.ID, props func() graph.Props) {
		for i := 0; i < n; i++ {
			var p graph.Props
			if props != nil {
				p = props()
			}
			g.MustAddEdge(from(), to(), []string{label}, p)
		}
	}
	randUser := func() graph.ID { return users[pick(rng, cyUsers)].ID }
	randComputer := func() graph.ID { return computers[pick(rng, cyComputers)].ID }
	randGroup := func() graph.ID { return groups[pick(rng, cyGroups)].ID }
	randDomain := func() graph.ID { return domains[pick(rng, cyDomains)].ID }
	// Access-right edges concentrate on admin accounts (the hub structure
	// BloodHound-style graphs are known for).
	adminUser := zipfPicker(rng, cyUsers)
	hubUser := func() graph.ID { return users[adminUser()].ID }
	adminGroup := zipfPicker(rng, cyGroups)

	addMany(cyAdminTo, "ADMIN_TO", func() graph.ID { return groups[adminGroup()].ID }, randComputer, nil)
	// Sessions pile up on the same handful of admin accounts.
	sessionUser := zipfPicker(rng, cyUsers)
	addMany(cyHasSession, "HAS_SESSION", randComputer, func() graph.ID { return users[sessionUser()].ID }, nil)
	addMany(cyContains, "CONTAINS", func() graph.ID { return ous[pick(rng, cyOUs)].ID }, randComputer, nil)
	for i := 0; i < cyGpLink; i++ {
		g.MustAddEdge(gpos[i%cyGPOs].ID, ous[i%cyOUs].ID, []string{"GP_LINK"}, graph.Props{
			"enforced": graph.NewBool(i%4 == 0),
		})
	}
	g.MustAddEdge(domains[0].ID, domains[1].ID, []string{"TRUSTED_BY"}, nil)
	g.MustAddEdge(domains[1].ID, domains[2].ID, []string{"TRUSTED_BY"}, nil)
	g.MustAddEdge(domains[2].ID, domains[0].ID, []string{"TRUSTED_BY"}, nil)
	addMany(cyOwns, "OWNS", hubUser, randComputer, nil)
	addMany(cyCanRDP, "CAN_RDP", hubUser, randComputer, nil)
	addMany(cyExecuteDCOM, "EXECUTE_DCOM", hubUser, randComputer, nil)
	addMany(cyDelegate, "ALLOWED_TO_DELEGATE", hubUser, randComputer, nil)
	addMany(cyGetChanges, "GET_CHANGES", randUser, randDomain, nil)
	addMany(cyGetChangesAll, "GET_CHANGES_ALL", randUser, randDomain, nil)
	addMany(cyAddMember, "ADD_MEMBER", randUser, randGroup, nil)
	// FORCE_CHANGE_PASSWORD with occasional self-edge violation.
	for i := 0; i < cyForcePwd; i++ {
		a := pick(rng, cyUsers)
		b := pick(rng, cyUsers)
		if vio.hit("forcepwd-self") {
			b = a
		} else if a == b {
			b = (b + 1) % cyUsers
		}
		g.MustAddEdge(users[a].ID, users[b].ID, []string{"FORCE_CHANGE_PASSWORD"}, nil)
	}
	addMany(cySQLAdmin, "SQL_ADMIN", randUser, randComputer, nil)
	addMany(cyAppliesTo, "APPLIES_TO", func() graph.ID { return gpos[pick(rng, cyGPOs)].ID }, randComputer, nil)
	return g
}
