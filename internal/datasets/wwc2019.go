package datasets

import (
	"fmt"
	"math/rand"

	"github.com/graphrules/graphrules/internal/graph"
)

// WWC2019 node budget (total 2468, 5 labels).
const (
	wwcTournaments = 1
	wwcTeams       = 24
	wwcMatches     = 52
	wwcSquads      = 24
	wwcPersons     = 2468 - wwcTournaments - wwcTeams - wwcMatches - wwcSquads
)

// WWC2019 edge budget (total 14799, 9 labels). PLAYED_IN absorbs the
// remainder: the real dataset's edge count is dominated by per-event
// participation edges, which we model as (Person)-[:PLAYED_IN]->(Match).
const (
	wwcInSquad      = 552 // 24 squads x 23 players
	wwcFor          = 24  // Squad -> Tournament
	wwcForTeam      = 24  // Squad -> Team
	wwcInTournament = 52  // Match -> Tournament
	wwcHomeTeam     = 52  // Team -> Match
	wwcAwayTeam     = 52  // Team -> Match
	wwcCoachFor     = 24  // Person -> Team
	wwcScoredGoal   = 150 // Person -> Match {minute}
	wwcPlayedIn     = 14799 - wwcInSquad - wwcFor - wwcForTeam - wwcInTournament -
		wwcHomeTeam - wwcAwayTeam - wwcCoachFor - wwcScoredGoal
)

var wwcTeamNames = []string{
	"USA", "Netherlands", "Sweden", "England", "France", "Germany", "Norway",
	"Italy", "Spain", "Japan", "Australia", "Brazil", "Canada", "China",
	"Nigeria", "Cameroon", "Chile", "Argentina", "Scotland", "South Korea",
	"New Zealand", "Jamaica", "Thailand", "South Africa",
}

var wwcStages = []string{
	"Group Stage", "Round of 16", "Quarter-final", "Semi-final", "Final",
}

// WWC2019 generates the Women's World Cup 2019 graph: teams, persons,
// matches, one tournament and squads, connected by nine relationship types.
//
// Injected violations (rate-controlled):
//   - Match nodes missing their date or stage property
//   - duplicate Person ids
//   - SCORED_GOAL pairs sharing the same minute for one (person, match)
//   - a Squad whose FOR edge points at a Team instead of the Tournament
//     is NOT injected (edge labels stay schema-clean); instead some squads
//     hold players who PLAYED_IN a match of a tournament their squad is not
//     registered FOR (the multi-hop association violation the paper's
//     Mixtral rule catches).
func WWC2019(opts Options) *graph.Graph {
	rng := rand.New(rand.NewSource(opts.Seed))
	vio := newViolator(opts.Seed+1, opts.ViolationRate)
	g := graph.New("WWC2019")

	tournament := g.AddNode([]string{"Tournament"}, graph.Props{
		"id":   graph.NewInt(1),
		"name": graph.NewString("FIFA Women's World Cup 2019"),
		"year": graph.NewInt(2019),
	})

	teams := make([]*graph.Node, wwcTeams)
	for i := range teams {
		teams[i] = g.AddNode([]string{"Team"}, graph.Props{
			"id":      graph.NewInt(int64(100 + i)),
			"name":    graph.NewString(wwcTeamNames[i]),
			"ranking": graph.NewInt(int64(1 + i)),
		})
	}

	matches := make([]*graph.Node, wwcMatches)
	for i := range matches {
		props := graph.Props{
			"id":     graph.NewInt(int64(1000 + i)),
			"date":   graph.NewString(isoDate(i % 30)),
			"stage":  graph.NewString(wwcStages[stageFor(i)]),
			"score1": graph.NewInt(int64(rng.Intn(5))),
			"score2": graph.NewInt(int64(rng.Intn(4))),
		}
		// Violation: essential attributes missing on a match.
		if vio.hit("match-missing-date") {
			delete(props, "date")
		}
		if vio.hit("match-missing-stage") {
			delete(props, "stage")
		}
		matches[i] = g.AddNode([]string{"Match"}, props)
	}

	squads := make([]*graph.Node, wwcSquads)
	for i := range squads {
		squads[i] = g.AddNode([]string{"Squad"}, graph.Props{
			"id":   graph.NewInt(int64(500 + i)),
			"year": graph.NewInt(2019),
		})
	}

	persons := make([]*graph.Node, wwcPersons)
	for i := range persons {
		id := int64(10000 + i)
		// Violation: duplicate person identifier.
		if i > 0 && vio.hit("person-duplicate-id") {
			id = int64(10000 + rng.Intn(i))
		}
		persons[i] = g.AddNode([]string{"Person"}, graph.Props{
			"id":   graph.NewInt(id),
			"name": graph.NewString(personName(i)),
			"dob":  graph.NewString(fmt.Sprintf("%d-%02d-%02d", 1985+i%18, 1+i%12, 1+i%28)),
		})
	}

	// IN_SQUAD: the first 552 persons fill squads of 23.
	for i := 0; i < wwcInSquad; i++ {
		g.MustAddEdge(persons[i].ID, squads[i/23].ID, []string{"IN_SQUAD"}, nil)
	}
	// FOR / FOR_TEAM: squads belong to the tournament and a team.
	for i, s := range squads {
		g.MustAddEdge(s.ID, tournament.ID, []string{"FOR"}, nil)
		g.MustAddEdge(s.ID, teams[i].ID, []string{"FOR_TEAM"}, nil)
	}
	// IN_TOURNAMENT: matches belong to the tournament.
	for _, m := range matches {
		g.MustAddEdge(m.ID, tournament.ID, []string{"IN_TOURNAMENT"}, nil)
	}
	// HOME_TEAM / AWAY_TEAM.
	for i, m := range matches {
		home := teams[i%wwcTeams]
		away := teams[(i+1+rng.Intn(wwcTeams-1))%wwcTeams]
		g.MustAddEdge(home.ID, m.ID, []string{"HOME_TEAM"}, nil)
		g.MustAddEdge(away.ID, m.ID, []string{"AWAY_TEAM"}, nil)
	}
	// COACH_FOR: the last 24 persons coach one team each.
	for i := 0; i < wwcCoachFor; i++ {
		g.MustAddEdge(persons[wwcPersons-1-i].ID, teams[i].ID, []string{"COACH_FOR"}, nil)
	}
	// SCORED_GOAL with a minute property; violation: same minute twice for
	// one (person, match).
	goals := 0
	for goals < wwcScoredGoal {
		p := persons[pick(rng, wwcInSquad)] // goal scorers are squad players
		m := matches[pick(rng, wwcMatches)]
		minute := int64(1 + rng.Intn(90))
		g.MustAddEdge(p.ID, m.ID, []string{"SCORED_GOAL"}, graph.Props{"minute": graph.NewInt(minute)})
		goals++
		if goals < wwcScoredGoal && vio.hit("goal-duplicate-minute") {
			g.MustAddEdge(p.ID, m.ID, []string{"SCORED_GOAL"}, graph.Props{"minute": graph.NewInt(minute)})
			goals++
		}
	}
	// PLAYED_IN (filler to the exact Table 1 edge total). Players normally
	// play matches of the tournament their squad is FOR; the violation
	// assigns appearances to persons outside any squad (breaking the
	// player-squad-tournament association).
	for i := 0; i < wwcPlayedIn; i++ {
		var p *graph.Node
		if vio.hit("played-without-squad") {
			p = persons[wwcInSquad+pick(rng, wwcPersons-wwcInSquad-wwcCoachFor)]
		} else {
			p = persons[pick(rng, wwcInSquad)]
		}
		m := matches[pick(rng, wwcMatches)]
		g.MustAddEdge(p.ID, m.ID, []string{"PLAYED_IN"}, nil)
	}
	return g
}

// stageFor maps match index to a plausible tournament stage.
func stageFor(i int) int {
	switch {
	case i < 36:
		return 0
	case i < 44:
		return 1
	case i < 48:
		return 2
	case i < 50:
		return 3
	default:
		return 4
	}
}
