package datasets

import (
	"fmt"
	"math/rand"

	"github.com/graphrules/graphrules/internal/graph"
)

// Twitter node budget (total 43325, 6 labels).
const (
	twUsers    = 4000
	twTweets   = 30000
	twHashtags = 5000
	twLinks    = 3800
	twSources  = 320
	twTopics   = 43325 - twUsers - twTweets - twHashtags - twLinks - twSources
)

// Twitter edge budget (total 56493, 8 labels). TAGS absorbs the remainder.
const (
	twOrphanTweets = 10 // tweets with no POSTS edge (violation budget)
	twPosts        = twTweets - twOrphanTweets
	twRetweets     = 6000
	twMentions     = 8000
	twFollows      = 7000
	twContains     = 2000 // Tweet -> Link
	twUsing        = 800  // Tweet -> Source
	twAbout        = 200  // Tweet -> Topic
	twTags         = 56493 - twPosts - twRetweets - twMentions - twFollows -
		twContains - twUsing - twAbout
)

var twSourceNames = []string{
	"Twitter Web App", "Twitter for iPhone", "Twitter for Android",
	"TweetDeck", "Hootsuite", "Buffer", "IFTTT", "Zapier",
}

// Twitter generates the social-interaction graph: users, tweets, hashtags,
// links, sources and topics, wired by eight relationship types.
//
// Injected violations:
//   - duplicate Tweet ids
//   - Tweet nodes missing their text property
//   - RETWEETS edges whose retweet predates the original (temporal)
//   - FOLLOWS self-edges
//   - orphan tweets with no posting user (fixed small budget)
func Twitter(opts Options) *graph.Graph {
	rng := rand.New(rand.NewSource(opts.Seed))
	vio := newViolator(opts.Seed+3, opts.ViolationRate)
	g := graph.New("Twitter")

	users := make([]*graph.Node, twUsers)
	for i := range users {
		users[i] = g.AddNode([]string{"User"}, graph.Props{
			"id":          graph.NewInt(int64(1 + i)),
			"screen_name": graph.NewString(fmt.Sprintf("user_%04d", i)),
			"name":        graph.NewString(personName(i)),
			"followers":   graph.NewInt(int64(rng.Intn(100000))),
		})
	}

	const epoch = int64(1560000000) // 2019-06-08, seconds
	tweets := make([]*graph.Node, twTweets)
	createdAt := make([]int64, twTweets)
	for i := range tweets {
		id := int64(100000 + i)
		// Violation: duplicate tweet identifier.
		if i > 0 && vio.hit("tweet-duplicate-id") {
			id = int64(100000 + rng.Intn(i))
		}
		at := epoch + int64(i)*13 + int64(rng.Intn(11))
		createdAt[i] = at
		props := graph.Props{
			"id":        graph.NewInt(id),
			"text":      graph.NewString(fmt.Sprintf("tweet %d about topic %d", i, i%97)),
			"createdAt": graph.NewInt(at),
		}
		// Violation: missing text.
		if vio.hit("tweet-missing-text") {
			delete(props, "text")
		}
		tweets[i] = g.AddNode([]string{"Tweet"}, props)
	}

	hashtags := make([]*graph.Node, twHashtags)
	for i := range hashtags {
		hashtags[i] = g.AddNode([]string{"Hashtag"}, graph.Props{
			"name": graph.NewString(fmt.Sprintf("tag%04d", i)),
		})
	}
	links := make([]*graph.Node, twLinks)
	for i := range links {
		links[i] = g.AddNode([]string{"Link"}, graph.Props{
			"url": graph.NewString(fmt.Sprintf("https://example.com/p/%d", i)),
		})
	}
	sources := make([]*graph.Node, twSources)
	for i := range sources {
		sources[i] = g.AddNode([]string{"Source"}, graph.Props{
			"name": graph.NewString(fmt.Sprintf("%s #%d", twSourceNames[i%len(twSourceNames)], i)),
		})
	}
	topics := make([]*graph.Node, twTopics)
	for i := range topics {
		topics[i] = g.AddNode([]string{"Topic"}, graph.Props{
			"name": graph.NewString(fmt.Sprintf("topic-%03d", i)),
		})
	}

	// POSTS: every tweet except the orphan budget gets exactly one poster.
	for i := 0; i < twPosts; i++ {
		g.MustAddEdge(users[pick(rng, twUsers)].ID, tweets[i].ID, []string{"POSTS"}, nil)
	}
	// (tweets[twPosts:] are the orphans — "tweet without a valid user".)

	// RETWEETS: later tweet retweets earlier one; the violation flips the
	// temporal order.
	for i := 0; i < twRetweets; i++ {
		a := 1 + pick(rng, twTweets-1)
		b := pick(rng, a) // b < a, so tweets[b] is older
		from, to := tweets[a], tweets[b]
		if vio.hit("retweet-before-original") {
			from, to = to, from
		}
		g.MustAddEdge(from.ID, to.ID, []string{"RETWEETS"}, nil)
	}
	// MENTIONS: Tweet -> User (heavy-tailed: celebrities get mentioned).
	mentionTarget := zipfPicker(rng, twUsers)
	for i := 0; i < twMentions; i++ {
		g.MustAddEdge(tweets[pick(rng, twTweets)].ID, users[mentionTarget()].ID, []string{"MENTIONS"}, nil)
	}
	// FOLLOWS with self-follow violations; follow targets are heavy-tailed.
	followTarget := zipfPicker(rng, twUsers)
	for i := 0; i < twFollows; i++ {
		a := pick(rng, twUsers)
		b := followTarget()
		if vio.hit("self-follow") {
			b = a
		} else if a == b {
			b = (b + 1) % twUsers
		}
		g.MustAddEdge(users[a].ID, users[b].ID, []string{"FOLLOWS"}, nil)
	}
	// CONTAINS: Tweet -> Link; USING: Tweet -> Source; ABOUT: Tweet -> Topic.
	for i := 0; i < twContains; i++ {
		g.MustAddEdge(tweets[pick(rng, twTweets)].ID, links[pick(rng, twLinks)].ID, []string{"CONTAINS"}, nil)
	}
	for i := 0; i < twUsing; i++ {
		g.MustAddEdge(tweets[pick(rng, twTweets)].ID, sources[pick(rng, twSources)].ID, []string{"USING"}, nil)
	}
	for i := 0; i < twAbout; i++ {
		g.MustAddEdge(tweets[pick(rng, twTweets)].ID, topics[pick(rng, twTopics)].ID, []string{"ABOUT"}, nil)
	}
	// TAGS (filler to the exact Table 1 edge total): Tweet -> Hashtag,
	// with trending-hashtag skew.
	tagTarget := zipfPicker(rng, twHashtags)
	for i := 0; i < twTags; i++ {
		g.MustAddEdge(tweets[pick(rng, twTweets)].ID, hashtags[tagTarget()].ID, []string{"TAGS"}, nil)
	}
	return g
}
