package datasets

import (
	"testing"

	"github.com/graphrules/graphrules/internal/cypher"
	"github.com/graphrules/graphrules/internal/graph"
)

// TestTable1Exact is the Table 1 reproduction invariant: every generator
// must hit the paper's node/edge/label counts exactly, with and without
// violation injection.
func TestTable1Exact(t *testing.T) {
	for _, rate := range []float64{0, 0.03} {
		for _, info := range Table1 {
			gen, err := ByName(info.Name)
			if err != nil {
				t.Fatal(err)
			}
			g := gen(Options{Seed: 42, ViolationRate: rate})
			if got := g.NodeCount(); got != info.Nodes {
				t.Errorf("%s(rate=%v): nodes = %d, want %d", info.Name, rate, got, info.Nodes)
			}
			if got := g.EdgeCount(); got != info.Edges {
				t.Errorf("%s(rate=%v): edges = %d, want %d", info.Name, rate, got, info.Edges)
			}
			if got := len(g.NodeLabels()); got != info.NodeLabels {
				t.Errorf("%s(rate=%v): node labels = %d (%v), want %d", info.Name, rate, got, g.NodeLabels(), info.NodeLabels)
			}
			if got := len(g.EdgeTypes()); got != info.EdgeLabels {
				t.Errorf("%s(rate=%v): edge labels = %d (%v), want %d", info.Name, rate, got, g.EdgeTypes(), info.EdgeLabels)
			}
		}
	}
}

func TestDeterminism(t *testing.T) {
	for _, name := range Names() {
		gen, _ := ByName(name)
		if name == "Twitter" && testing.Short() {
			continue
		}
		a := gen(Options{Seed: 7, ViolationRate: 0.05})
		b := gen(Options{Seed: 7, ViolationRate: 0.05})
		sa, sb := graph.ExtractSchema(a), graph.ExtractSchema(b)
		if sa.Describe() != sb.Describe() {
			t.Errorf("%s: same seed produced different schemas", name)
		}
		// Spot-check some node identity.
		for _, id := range []graph.ID{0, 5, 100} {
			na, nb := a.Node(id), b.Node(id)
			if (na == nil) != (nb == nil) {
				t.Fatalf("%s: node %d presence differs", name, id)
			}
			if na != nil && na.Prop("id").String() != nb.Prop("id").String() {
				t.Errorf("%s: node %d differs between runs", name, id)
			}
		}
		c := gen(Options{Seed: 8, ViolationRate: 0.05})
		if graph.ExtractSchema(c).Describe() == sa.Describe() && name != "WWC2019" {
			// Different seeds move random endpoints; schema counts of
			// endpoint pairs almost surely differ for the bigger graphs.
			t.Logf("%s: seed change produced identical schema (possible but unlikely)", name)
		}
	}
}

func TestByNameErrors(t *testing.T) {
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown dataset should error")
	}
	if _, err := InfoFor("nope"); err == nil {
		t.Error("unknown info should error")
	}
	in, err := InfoFor("Twitter")
	if err != nil || in.Edges != 56493 {
		t.Error("InfoFor Twitter wrong")
	}
}

func q(t *testing.T, g *graph.Graph, src string) int64 {
	t.Helper()
	res, err := cypher.NewExecutor(g).Run(src, nil)
	if err != nil {
		t.Fatalf("query %q: %v", src, err)
	}
	return res.FirstInt("")
}

func TestWWC2019Violations(t *testing.T) {
	g := WWC2019(Options{Seed: 42, ViolationRate: 0.05})
	if n := q(t, g, `MATCH (m:Match) WHERE m.date IS NULL RETURN count(*)`); n == 0 {
		t.Error("expected matches with missing date")
	}
	if n := q(t, g, `MATCH (p:Person) WITH p.id AS id, count(*) AS c WHERE c > 1 RETURN count(*)`); n == 0 {
		t.Error("expected duplicate person ids")
	}
	if n := q(t, g, `MATCH (p:Person)-[g1:SCORED_GOAL]->(m:Match)-[:IN_TOURNAMENT]->(:Tournament) WITH p, m, g1.minute AS minute, count(*) AS c WHERE c > 1 RETURN count(*)`); n == 0 {
		t.Error("expected duplicate goal minutes")
	}
	// The association violation: players without squads played matches.
	if n := q(t, g, `MATCH (p:Person)-[:PLAYED_IN]->(:Match) WHERE NOT (p)-[:IN_SQUAD]->(:Squad) RETURN count(*)`); n == 0 {
		t.Error("expected squadless players")
	}
	clean := WWC2019(Options{Seed: 42, ViolationRate: 0})
	if n := q(t, clean, `MATCH (m:Match) WHERE m.date IS NULL RETURN count(*)`); n != 0 {
		t.Error("clean graph should have no missing dates")
	}
}

func TestCybersecurityViolations(t *testing.T) {
	g := Cybersecurity(Options{Seed: 42, ViolationRate: 0.05})
	if n := q(t, g, `MATCH (u:User) WHERE NOT u.owned IN [true, false] RETURN count(*)`); n == 0 {
		t.Error("expected non-boolean owned values")
	}
	if n := q(t, g, `MATCH (u:User) WHERE NOT u.domain =~ '([a-zA-Z0-9-]+\.)+[a-zA-Z]{2,}' RETURN count(*)`); n == 0 {
		t.Error("expected malformed domain strings")
	}
	if n := q(t, g, `MATCH (a:User)-[:FORCE_CHANGE_PASSWORD]->(a) RETURN count(*)`); n == 0 {
		t.Error("expected self force-password edges")
	}
	if n := q(t, g, `MATCH (u:User) WHERE NOT (u)-[:MEMBER_OF]->(:Group) RETURN count(*)`); n == 0 {
		t.Error("expected groupless users")
	}
}

func TestTwitterViolations(t *testing.T) {
	if testing.Short() {
		t.Skip("twitter graph is large")
	}
	g := Twitter(Options{Seed: 42, ViolationRate: 0.03})
	if n := q(t, g, `MATCH (t:Tweet) WITH t.id AS id, count(*) AS c WHERE c > 1 RETURN count(*)`); n == 0 {
		t.Error("expected duplicate tweet ids")
	}
	if n := q(t, g, `MATCH (t:Tweet) WHERE t.text IS NULL RETURN count(*)`); n == 0 {
		t.Error("expected tweets without text")
	}
	if n := q(t, g, `MATCH (r:Tweet)-[:RETWEETS]->(o:Tweet) WHERE r.createdAt < o.createdAt RETURN count(*)`); n == 0 {
		t.Error("expected temporal retweet violations")
	}
	if n := q(t, g, `MATCH (u:User)-[:FOLLOWS]->(u) RETURN count(*)`); n == 0 {
		t.Error("expected self-follows")
	}
	if n := q(t, g, `MATCH (t:Tweet) WHERE NOT (t)<-[:POSTS]-(:User) RETURN count(*)`); n != twOrphanTweets {
		t.Errorf("orphan tweets = %d, want %d", n, twOrphanTweets)
	}
}

func TestCleanGraphHasNoViolations(t *testing.T) {
	g := Cybersecurity(Options{Seed: 42, ViolationRate: 0})
	if n := q(t, g, `MATCH (u:User) WHERE NOT u.owned IN [true, false] RETURN count(*)`); n != 0 {
		t.Error("clean cybersecurity graph should have boolean owned everywhere")
	}
	if n := q(t, g, `MATCH (a:User)-[:FORCE_CHANGE_PASSWORD]->(a) RETURN count(*)`); n != 0 {
		t.Error("clean graph should have no self force-password edges")
	}
}

func TestSchemasMatchPaperShape(t *testing.T) {
	g := WWC2019(DefaultOptions())
	s := graph.ExtractSchema(g)
	for _, l := range []string{"Team", "Person", "Match", "Tournament", "Squad"} {
		if s.NodeLabels[l] == nil {
			t.Errorf("WWC2019 missing label %s", l)
		}
	}
	for _, e := range []string{"SCORED_GOAL", "IN_TOURNAMENT", "IN_SQUAD", "FOR", "PLAYED_IN"} {
		if s.EdgeLabels[e] == nil {
			t.Errorf("WWC2019 missing edge type %s", e)
		}
	}
	// IN_TOURNAMENT must point Match -> Tournament (the direction the
	// paper's example error got wrong).
	from, to := s.EdgeLabels["IN_TOURNAMENT"].DominantEndpoints()
	if from != "Match" || to != "Tournament" {
		t.Errorf("IN_TOURNAMENT endpoints = %s->%s", from, to)
	}
	if !s.HasEdgeProp("SCORED_GOAL", "minute") {
		t.Error("SCORED_GOAL should carry minute")
	}
}

func TestViolationRateScales(t *testing.T) {
	low := WWC2019(Options{Seed: 1, ViolationRate: 0.01})
	high := WWC2019(Options{Seed: 1, ViolationRate: 0.2})
	nLow := q(t, low, `MATCH (m:Match) WHERE m.date IS NULL RETURN count(*)`)
	nHigh := q(t, high, `MATCH (m:Match) WHERE m.date IS NULL RETURN count(*)`)
	if nHigh <= nLow {
		t.Errorf("violations should scale with rate: low=%d high=%d", nLow, nHigh)
	}
}

// TestHubSkew asserts the heavy-tailed structure required for the §4.5
// boundary-break audit: the Twitter and Cybersecurity graphs must have hub
// nodes whose degree far exceeds the average.
func TestHubSkew(t *testing.T) {
	if testing.Short() {
		t.Skip("large graphs")
	}
	for _, name := range []string{"Twitter", "Cybersecurity"} {
		gen, _ := ByName(name)
		g := gen(DefaultOptions())
		s := graph.ComputeStats(g)
		maxDeg := s.TopByDegree[0].Degree
		if float64(maxDeg) < 10*s.AvgDegree {
			t.Errorf("%s: top hub degree %d should dwarf the average %.1f", name, maxDeg, s.AvgDegree)
		}
	}
}
