package graph

import "testing"

func TestRestoreNodeAndEdge(t *testing.T) {
	g := New("restore")
	a := g.AddNode([]string{"A"}, Props{"k": NewInt(1)})
	b := g.AddNode([]string{"B"}, nil)
	e := g.MustAddEdge(a.ID, b.ID, []string{"REL"}, Props{"w": NewFloat(2.5)})

	snap := g.Snapshot()
	g.RemoveNode(a.ID) // cascades the edge
	if g.Node(a.ID) != nil || g.Edge(e.ID) != nil {
		t.Fatalf("remove did not take")
	}

	if err := g.RestoreNode(snap.Node(a.ID)); err != nil {
		t.Fatalf("RestoreNode: %v", err)
	}
	if err := g.RestoreEdge(snap.Edge(e.ID)); err != nil {
		t.Fatalf("RestoreEdge: %v", err)
	}

	got := g.Node(a.ID)
	if got == nil || !got.HasLabel("A") || got.Prop("k").Int() != 1 {
		t.Fatalf("restored node mismatch: %+v", got)
	}
	ge := g.Edge(e.ID)
	if ge == nil || ge.From != a.ID || ge.To != b.ID || ge.Prop("w").Float() != 2.5 {
		t.Fatalf("restored edge mismatch: %+v", ge)
	}
	// Label index must serve the restored node again.
	if ids := g.NodesWithLabel("A"); len(ids) != 1 || ids[0] != a.ID {
		t.Fatalf("label index after restore: %v", ids)
	}
	if deg := g.OutDegree(a.ID); deg != 1 {
		t.Fatalf("adjacency after restore: out degree %d", deg)
	}

	// A fresh AddNode must not collide with the restored ID.
	fresh := g.AddNode([]string{"C"}, nil)
	if fresh.ID == a.ID || fresh.ID == b.ID {
		t.Fatalf("ID allocator reused a restored ID: %d", fresh.ID)
	}

	// Restoring over a live entity is an error.
	if err := g.RestoreNode(snap.Node(a.ID)); err == nil {
		t.Fatalf("RestoreNode over live node should fail")
	}
	if err := g.RestoreEdge(snap.Edge(e.ID)); err == nil {
		t.Fatalf("RestoreEdge over live edge should fail")
	}
}

func TestRestoreEdgeRequiresEndpoints(t *testing.T) {
	g := New("restore-endpoints")
	a := g.AddNode([]string{"A"}, nil)
	b := g.AddNode([]string{"B"}, nil)
	e := g.MustAddEdge(a.ID, b.ID, []string{"REL"}, nil)
	snap := g.Snapshot()
	g.RemoveNode(b.ID)
	if err := g.RestoreEdge(snap.Edge(e.ID)); err == nil {
		t.Fatalf("RestoreEdge without target should fail")
	}
}
