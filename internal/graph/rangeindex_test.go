package graph

import (
	"sync"
	"testing"
)

// rangeGraph builds a small graph with mixed-kind properties under one
// label: ints 0..9 on key "x" (insertion order 0,1,...,9), a few strings on
// key "s", and typed edges carrying a "w" property.
func rangeGraph() (*Graph, []ID) {
	g := New("range")
	var ids []ID
	strs := []string{"apple", "apricot", "banana", "cherry"}
	for i := 0; i < 10; i++ {
		props := Props{"x": NewInt(int64(i))}
		if i < len(strs) {
			props["s"] = NewString(strs[i])
		}
		n := g.AddNode([]string{"P"}, props)
		ids = append(ids, n.ID)
	}
	for i := 1; i < len(ids); i++ {
		g.MustAddEdge(ids[i-1], ids[i], []string{"E"}, Props{"w": NewInt(int64(i * 10))})
	}
	return g, ids
}

func rangeInts(t *testing.T, g *Graph, lo, hi Bound) []int64 {
	t.Helper()
	var out []int64
	for _, n := range g.LabelPropRange("P", "x", lo, hi) {
		out = append(out, n.Props["x"].Int())
	}
	return out
}

func intsEqual(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestLabelPropRangeBounds(t *testing.T) {
	g, _ := rangeGraph()
	cases := []struct {
		name   string
		lo, hi Bound
		want   []int64
	}{
		{"closed", ValueBound(NewInt(3), true), ValueBound(NewInt(6), true), []int64{3, 4, 5, 6}},
		{"open", ValueBound(NewInt(3), false), ValueBound(NewInt(6), false), []int64{4, 5}},
		{"half-open-lo", ValueBound(NewInt(3), false), ValueBound(NewInt(6), true), []int64{4, 5, 6}},
		{"unbounded-hi", ValueBound(NewInt(7), true), Bound{}, []int64{7, 8, 9}},
		{"unbounded-lo", Bound{}, ValueBound(NewInt(2), false), []int64{0, 1}},
		{"empty", ValueBound(NewInt(100), true), Bound{}, nil},
		{"inverted", ValueBound(NewInt(6), true), ValueBound(NewInt(3), true), nil},
		{"point", ValueBound(NewInt(5), true), ValueBound(NewInt(5), true), []int64{5}},
	}
	for _, tc := range cases {
		if got := rangeInts(t, g, tc.lo, tc.hi); !intsEqual(got, tc.want) {
			t.Errorf("%s: got %v, want %v", tc.name, got, tc.want)
		}
		if n := g.LabelPropRangeCount("P", "x", tc.lo, tc.hi); n != len(tc.want) {
			t.Errorf("%s: count = %d, want %d", tc.name, n, len(tc.want))
		}
	}
}

// TestRangeKindBands checks that numeric and string sort keys live in
// disjoint bands: a numeric range never returns string-valued entries even
// when both kinds are indexed under the same key.
func TestRangeKindBands(t *testing.T) {
	g := New("bands")
	g.AddNode([]string{"M"}, Props{"v": NewInt(5)})
	g.AddNode([]string{"M"}, Props{"v": NewString("5")})
	g.AddNode([]string{"M"}, Props{"v": NewBool(true)})

	lo, hi := ValueBound(NewInt(0), true), ValueBound(NewInt(10), true)
	got := g.LabelPropRange("M", "v", lo, hi)
	if len(got) != 1 || got[0].Props["v"].Kind() != KindInt {
		t.Fatalf("numeric range returned %d entries (want just the int)", len(got))
	}
	// An unbounded-above numeric range clamped at the string band fence
	// (what the executor emits for `v > 0`) must exclude strings too.
	got = g.LabelPropRange("M", "v", ValueBound(NewInt(0), false), RawBound("2:", false))
	if len(got) != 1 || got[0].Props["v"].Kind() != KindInt {
		t.Fatalf("band-clamped range returned %d entries", len(got))
	}
	// String prefix segment catches only the string.
	got = g.LabelPropRange("M", "v", RawBound("2:", true), RawBound("3:", false))
	if len(got) != 1 || got[0].Props["v"].Kind() != KindString {
		t.Fatalf("string band returned %d entries", len(got))
	}
}

// TestRangeInsertionOrder pins the order contract: seek results come back
// in label-bucket insertion order (a subsequence of the plain label scan),
// not value order.
func TestRangeInsertionOrder(t *testing.T) {
	g := New("order")
	// Insert out of value order so value order != insertion order.
	for _, v := range []int64{5, 1, 9, 3, 7} {
		g.AddNode([]string{"Q"}, Props{"x": NewInt(v)})
	}
	got := rangeIntsLabel(t, g, "Q")
	want := []int64{5, 1, 3} // insertion order of the values <= 5
	if !intsEqual(got, want) {
		t.Fatalf("range order %v, want insertion order %v", got, want)
	}
}

func rangeIntsLabel(t *testing.T, g *Graph, label string) []int64 {
	t.Helper()
	var out []int64
	for _, n := range g.LabelPropRange(label, "x", Bound{}, ValueBound(NewInt(5), true)) {
		out = append(out, n.Props["x"].Int())
	}
	return out
}

func TestTypePropRangeAndEquality(t *testing.T) {
	g, _ := rangeGraph()
	es := g.TypePropRange("E", "w", ValueBound(NewInt(30), true), ValueBound(NewInt(50), false))
	if len(es) != 2 {
		t.Fatalf("edge range returned %d edges, want 2", len(es))
	}
	if es[0].Props["w"].Int() != 30 || es[1].Props["w"].Int() != 40 {
		t.Fatalf("edge range values %v %v", es[0].Props["w"], es[1].Props["w"])
	}
	if n := g.TypePropRangeCount("E", "w", Bound{}, Bound{}); n != 9 {
		t.Fatalf("unbounded edge count = %d, want 9", n)
	}
	eq := g.TypePropEdges("E", "w", NewInt(40))
	if len(eq) != 1 || eq[0].Props["w"].Int() != 40 {
		t.Fatalf("edge equality seek: %v", eq)
	}
	if got := g.TypePropEdges("E", "w", Null); got != nil {
		t.Fatalf("null equality seek should return nil, got %v", got)
	}
}

// TestRangeIndexInvalidation checks incremental invalidation: mutating a
// node drops only the postings of its labels, mutating an edge only the
// postings of its types, and subsequent seeks rebuild and see fresh data.
func TestRangeIndexInvalidation(t *testing.T) {
	g, ids := rangeGraph()
	other := g.AddNode([]string{"Other"}, Props{"x": NewInt(1)})

	// Warm three postings: (P,x), (Other,x), (E,w).
	g.LabelPropRangeCount("P", "x", Bound{}, Bound{})
	g.LabelPropRangeCount("Other", "x", Bound{}, Bound{})
	g.TypePropRangeCount("E", "w", Bound{}, Bound{})
	st := g.IndexStats()
	if st.OrdNodeLive != 2 || st.OrdEdgeLive != 1 {
		t.Fatalf("live postings = %d node / %d edge, want 2/1", st.OrdNodeLive, st.OrdEdgeLive)
	}

	// Mutating a P node drops (P,x) but keeps (Other,x) and (E,w).
	if err := g.SetNodeProp(ids[0], "x", NewInt(100)); err != nil {
		t.Fatal(err)
	}
	st = g.IndexStats()
	if st.OrdNodeLive != 1 || st.OrdEdgeLive != 1 {
		t.Fatalf("after node mutation: %d node / %d edge live, want 1/1", st.OrdNodeLive, st.OrdEdgeLive)
	}
	// The rebuilt posting must see the new value.
	if n := g.LabelPropRangeCount("P", "x", ValueBound(NewInt(100), true), ValueBound(NewInt(100), true)); n != 1 {
		t.Fatalf("rebuilt posting misses updated value (count=%d)", n)
	}

	// Mutating an edge drops (E,w) but keeps node postings.
	eid := g.EdgesWithType("E")[0]
	if err := g.SetEdgeProp(eid, "w", NewInt(999)); err != nil {
		t.Fatal(err)
	}
	st = g.IndexStats()
	if st.OrdEdgeLive != 0 {
		t.Fatalf("after edge mutation: %d edge postings live, want 0", st.OrdEdgeLive)
	}
	if n := g.TypePropRangeCount("E", "w", ValueBound(NewInt(999), true), ValueBound(NewInt(999), true)); n != 1 {
		t.Fatalf("rebuilt edge posting misses updated value (count=%d)", n)
	}

	// Adding a label to a node invalidates postings under every label the
	// node now carries: old postings held the superseded node struct and the
	// new label's posting is missing it.
	g.LabelPropRangeCount("P", "x", Bound{}, Bound{}) // re-warm (P,x)
	if err := g.AddNodeLabels(other.ID, "P"); err != nil {
		t.Fatal(err)
	}
	if n := g.LabelPropRangeCount("P", "x", ValueBound(NewInt(1), true), ValueBound(NewInt(1), true)); n != 2 {
		t.Fatalf("posting after AddNodeLabels: count=%d, want 2 (nodes 1 and the relabeled one)", n)
	}

	// RemoveNode drops the removed node from rebuilt postings.
	g.RemoveNode(ids[5])
	if n := g.LabelPropRangeCount("P", "x", ValueBound(NewInt(5), true), ValueBound(NewInt(5), true)); n != 0 {
		t.Fatalf("posting still holds removed node (count=%d)", n)
	}
}

// TestRangeScanUnderMutation runs range seeks concurrently with COW
// mutations. Under -race this pins the invalidation locking contract:
// seeks must never observe torn postings, and every returned node is a
// valid (possibly superseded) snapshot carrying the label.
func TestRangeScanUnderMutation(t *testing.T) {
	g, ids := rangeGraph()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			id := ids[i%len(ids)]
			_ = g.SetNodeProp(id, "x", NewInt(int64(i%20)))
			_ = g.SetEdgeProp(g.EdgesWithType("E")[i%9], "w", NewInt(int64(i)))
			if i%7 == 0 {
				g.AddNode([]string{"P"}, Props{"x": NewInt(int64(i))})
			}
		}
	}()

	lo, hi := ValueBound(NewInt(0), true), ValueBound(NewInt(1000), true)
	for iter := 0; iter < 300; iter++ {
		for _, n := range g.LabelPropRange("P", "x", lo, hi) {
			if n == nil {
				t.Fatal("nil node from range seek during mutation")
			}
			if n.Props["x"].IsNull() {
				t.Fatal("range seek returned node without the indexed key")
			}
		}
		for _, e := range g.TypePropRange("E", "w", Bound{}, Bound{}) {
			if e == nil {
				t.Fatal("nil edge from range seek during mutation")
			}
		}
	}
	close(stop)
	wg.Wait()

	// After the writer stops, a fresh seek must agree with a full scan.
	want := 0
	for _, id := range g.NodesWithLabel("P") {
		n := g.Node(id)
		if v, ok := n.Props["x"]; ok && !v.IsNull() {
			want++
		}
	}
	if got := g.LabelPropRangeCount("P", "x", Bound{}, Bound{}); got != want {
		t.Fatalf("post-mutation count %d != scan count %d", got, want)
	}
}
