package graph

import (
	"strings"
	"testing"
)

func TestComputeStats(t *testing.T) {
	g := New("st")
	hub := g.AddNode([]string{"Hub"}, nil)
	iso := g.AddNode([]string{"Iso"}, nil)
	_ = iso
	for i := 0; i < 4; i++ {
		n := g.AddNode([]string{"Leaf"}, nil)
		g.MustAddEdge(n.ID, hub.ID, []string{"TO"}, nil)
	}
	g.MustAddEdge(hub.ID, hub.ID, []string{"SELF"}, nil)

	s := ComputeStats(g)
	if s.Nodes != 6 || s.Edges != 5 {
		t.Fatalf("sizes = %d/%d", s.Nodes, s.Edges)
	}
	if s.MaxInDegree != 5 { // 4 leaves + self-loop
		t.Errorf("MaxInDegree = %d", s.MaxInDegree)
	}
	if s.MaxOutDegree != 1 {
		t.Errorf("MaxOutDegree = %d", s.MaxOutDegree)
	}
	if s.Isolated != 1 {
		t.Errorf("Isolated = %d", s.Isolated)
	}
	if s.SelfLoops != 1 {
		t.Errorf("SelfLoops = %d", s.SelfLoops)
	}
	if s.NodeLabelCounts["Leaf"] != 4 || s.EdgeTypeCounts["TO"] != 4 {
		t.Error("label/type counts wrong")
	}
	if len(s.TopByDegree) == 0 || s.TopByDegree[0].Node != hub.ID {
		t.Errorf("top hub wrong: %+v", s.TopByDegree)
	}
	out := s.String()
	for _, want := range []string{"Nodes: 6", "MaxInDegree: 5", "Leaf=4", "Top hubs:", "Hub"} {
		if !strings.Contains(out, want) {
			t.Errorf("String missing %q:\n%s", want, out)
		}
	}
}

func TestComputeStatsEmpty(t *testing.T) {
	s := ComputeStats(New("e"))
	if s.Nodes != 0 || s.AvgDegree != 0 || len(s.TopByDegree) != 0 {
		t.Error("empty stats wrong")
	}
}
