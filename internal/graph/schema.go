package graph

import (
	"fmt"
	"sort"
	"strings"
)

// PropStat summarizes one property key as observed on one label.
type PropStat struct {
	Key      string
	Count    int          // elements of the label carrying the key
	Kinds    map[Kind]int // histogram of observed kinds
	Distinct int          // number of distinct values observed
	Samples  []string     // up to a few sample display values
}

// DominantKind returns the most frequent kind for the property.
func (p *PropStat) DominantKind() Kind {
	best, bestN := KindNull, -1
	for k, n := range p.Kinds {
		if n > bestN || (n == bestN && k < best) {
			best, bestN = k, n
		}
	}
	return best
}

// LabelSchema describes one node label or edge type.
type LabelSchema struct {
	Label string
	Count int
	Props map[string]*PropStat
}

// PropKeys returns the sorted property keys of the label.
func (ls *LabelSchema) PropKeys() []string {
	keys := make([]string, 0, len(ls.Props))
	for k := range ls.Props {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// EndpointStat counts how often an edge type connects a (source label,
// target label) pair.
type EndpointStat struct {
	FromLabel string
	ToLabel   string
	Count     int
}

// EdgeSchema describes one edge type including its endpoint label profile.
type EdgeSchema struct {
	LabelSchema
	Endpoints []EndpointStat // sorted by count desc, then labels
}

// DominantEndpoints returns the most frequent (from, to) label pair for the
// edge type, or ("", "") when the type has no edges.
func (es *EdgeSchema) DominantEndpoints() (string, string) {
	if len(es.Endpoints) == 0 {
		return "", ""
	}
	return es.Endpoints[0].FromLabel, es.Endpoints[0].ToLabel
}

// Schema is an extracted structural summary of a graph: per-label node and
// edge statistics. It is the "information about the property graph" the
// paper feeds into the Cypher-translation prompt (§3.2).
type Schema struct {
	GraphName  string
	NodeTotal  int
	EdgeTotal  int
	NodeLabels map[string]*LabelSchema
	EdgeLabels map[string]*EdgeSchema
}

const maxSamples = 3

// ExtractSchema scans the graph and produces its schema summary.
func ExtractSchema(g *Graph) *Schema {
	s := &Schema{
		GraphName:  g.Name(),
		NodeLabels: make(map[string]*LabelSchema),
		EdgeLabels: make(map[string]*EdgeSchema),
	}
	distinct := make(map[string]map[string]bool) // "label\x00key" -> value set

	observe := func(ls *LabelSchema, label string, props Props) {
		ls.Count++
		for k, v := range props {
			ps := ls.Props[k]
			if ps == nil {
				ps = &PropStat{Key: k, Kinds: make(map[Kind]int)}
				ls.Props[k] = ps
			}
			ps.Count++
			ps.Kinds[v.Kind()]++
			dk := label + "\x00" + k
			set := distinct[dk]
			if set == nil {
				set = make(map[string]bool)
				distinct[dk] = set
			}
			h := v.Hashable()
			if !set[h] {
				set[h] = true
				ps.Distinct++
				if len(ps.Samples) < maxSamples {
					ps.Samples = append(ps.Samples, v.Display())
				}
			}
		}
	}

	g.ForEachNode(func(n *Node) {
		s.NodeTotal++
		for _, l := range n.Labels {
			ls := s.NodeLabels[l]
			if ls == nil {
				ls = &LabelSchema{Label: l, Props: make(map[string]*PropStat)}
				s.NodeLabels[l] = ls
			}
			observe(ls, "n:"+l, n.Props)
		}
	})

	endpoints := make(map[string]map[[2]string]int)
	g.ForEachEdge(func(e *Edge) {
		s.EdgeTotal++
		from, to := g.Node(e.From), g.Node(e.To)
		for _, l := range e.Labels {
			es := s.EdgeLabels[l]
			if es == nil {
				es = &EdgeSchema{LabelSchema: LabelSchema{Label: l, Props: make(map[string]*PropStat)}}
				s.EdgeLabels[l] = es
			}
			observe(&es.LabelSchema, "e:"+l, e.Props)
			eps := endpoints[l]
			if eps == nil {
				eps = make(map[[2]string]int)
				endpoints[l] = eps
			}
			for _, fl := range labelsOrAnon(from) {
				for _, tl := range labelsOrAnon(to) {
					eps[[2]string{fl, tl}]++
				}
			}
		}
	})

	for l, eps := range endpoints {
		es := s.EdgeLabels[l]
		for pair, n := range eps {
			es.Endpoints = append(es.Endpoints, EndpointStat{FromLabel: pair[0], ToLabel: pair[1], Count: n})
		}
		sort.Slice(es.Endpoints, func(i, j int) bool {
			a, b := es.Endpoints[i], es.Endpoints[j]
			if a.Count != b.Count {
				return a.Count > b.Count
			}
			if a.FromLabel != b.FromLabel {
				return a.FromLabel < b.FromLabel
			}
			return a.ToLabel < b.ToLabel
		})
	}
	return s
}

func labelsOrAnon(n *Node) []string {
	if n == nil || len(n.Labels) == 0 {
		return []string{""}
	}
	return n.Labels
}

// NodeLabelNames returns the sorted node labels of the schema.
func (s *Schema) NodeLabelNames() []string {
	out := make([]string, 0, len(s.NodeLabels))
	for l := range s.NodeLabels {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}

// EdgeLabelNames returns the sorted edge labels of the schema.
func (s *Schema) EdgeLabelNames() []string {
	out := make([]string, 0, len(s.EdgeLabels))
	for l := range s.EdgeLabels {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}

// HasNodeProp reports whether the schema has seen property key on the node
// label.
func (s *Schema) HasNodeProp(label, key string) bool {
	ls := s.NodeLabels[label]
	if ls == nil {
		return false
	}
	_, ok := ls.Props[key]
	return ok
}

// HasEdgeProp reports whether the schema has seen property key on the edge
// label.
func (s *Schema) HasEdgeProp(label, key string) bool {
	es := s.EdgeLabels[label]
	if es == nil {
		return false
	}
	_, ok := es.Props[key]
	return ok
}

// Describe renders a compact human/LLM-readable schema description, used by
// the Cypher-translation prompt.
func (s *Schema) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Graph %s: %d nodes, %d edges.\n", s.GraphName, s.NodeTotal, s.EdgeTotal)
	b.WriteString("Node labels:\n")
	for _, l := range s.NodeLabelNames() {
		ls := s.NodeLabels[l]
		fmt.Fprintf(&b, "  %s (%d nodes): properties %s\n", l, ls.Count, describeProps(ls))
	}
	b.WriteString("Edge labels:\n")
	for _, l := range s.EdgeLabelNames() {
		es := s.EdgeLabels[l]
		from, to := es.DominantEndpoints()
		fmt.Fprintf(&b, "  %s (%d edges, (:%s)-[:%s]->(:%s)): properties %s\n",
			l, es.Count, from, l, to, describeProps(&es.LabelSchema))
	}
	return b.String()
}

func describeProps(ls *LabelSchema) string {
	if len(ls.Props) == 0 {
		return "(none)"
	}
	keys := ls.PropKeys()
	parts := make([]string, len(keys))
	for i, k := range keys {
		ps := ls.Props[k]
		parts[i] = fmt.Sprintf("%s:%s", k, ps.DominantKind())
	}
	return strings.Join(parts, ", ")
}
