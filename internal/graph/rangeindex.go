package graph

import "sort"

// This file holds the ordered (range) property indexes: per (label, key)
// for nodes and per (type, key) for edges, each a posting list sorted by
// value SortKey. Because SortKey is monotone with numeric order (and plain
// lexicographic for strings), inequality and prefix predicates become
// binary-searched contiguous segments of the sorted keys. The equality
// posting maps in propindex.go are the point-lookup projection of the same
// data; the ordered index adds the sorted key sequence on top.
//
// Order contract: every seek returns its matches in bucket-insertion order
// (the same order a plain label/type scan would enumerate them), NOT value
// order. A range seek therefore yields a subsequence of the full scan, so
// executors that re-filter candidates produce byte-identical row order with
// and without the index, and contiguous chunks of the returned slice remain
// valid shard partitions.
//
// Like the equality caches, ordered postings are built lazily under the
// write lock and invalidated by mutation — but invalidation is incremental:
// a node mutation drops only the postings of the labels the node carries,
// and an edge mutation drops only the postings of the edge's types (see
// invalidateNodeLabelsLocked / invalidateEdgeLabelsLocked in propindex.go).

// Bound is one end of a seek interval over value sort keys. The zero value
// is an unbounded end.
type Bound struct {
	SortKey   string
	Inclusive bool
	Set       bool // false = this end is unbounded
}

// ValueBound returns a bound at v's sort key.
func ValueBound(v Value, inclusive bool) Bound {
	return Bound{SortKey: v.SortKey(), Inclusive: inclusive, Set: true}
}

// RawBound returns a bound at an explicit sort key (kind-band fences,
// prefix successors).
func RawBound(sortKey string, inclusive bool) Bound {
	return Bound{SortKey: sortKey, Inclusive: inclusive, Set: true}
}

// ordEntry pairs an indexed item with its position in the label/type
// bucket, so range segments can be restored to bucket-insertion order.
type ordEntry[T any] struct {
	pos  int
	item T
}

// ordPosting is one (label, key) or (type, key) ordered index: the distinct
// value sort keys ascending, with the items holding each key.
type ordPosting[T any] struct {
	keys []string
	rows [][]ordEntry[T]
	size int
}

func buildOrdPosting[T any](items []T, keyOf func(T) (string, bool)) *ordPosting[T] {
	byKey := map[string][]ordEntry[T]{}
	for pos, it := range items {
		sk, ok := keyOf(it)
		if !ok {
			continue
		}
		byKey[sk] = append(byKey[sk], ordEntry[T]{pos: pos, item: it})
	}
	p := &ordPosting[T]{keys: make([]string, 0, len(byKey))}
	for k := range byKey {
		p.keys = append(p.keys, k)
	}
	sort.Strings(p.keys)
	p.rows = make([][]ordEntry[T], len(p.keys))
	for i, k := range p.keys {
		p.rows[i] = byKey[k]
		p.size += len(byKey[k])
	}
	return p
}

// segment resolves lo/hi to a half-open index range over p.keys.
func (p *ordPosting[T]) segment(lo, hi Bound) (int, int) {
	i := 0
	if lo.Set {
		if lo.Inclusive {
			i = sort.SearchStrings(p.keys, lo.SortKey)
		} else {
			i = sort.Search(len(p.keys), func(k int) bool { return p.keys[k] > lo.SortKey })
		}
	}
	j := len(p.keys)
	if hi.Set {
		if hi.Inclusive {
			j = sort.Search(len(p.keys), func(k int) bool { return p.keys[k] > hi.SortKey })
		} else {
			j = sort.SearchStrings(p.keys, hi.SortKey)
		}
	}
	if j < i {
		j = i
	}
	return i, j
}

// count returns how many entries fall inside [lo, hi] without
// materializing them.
func (p *ordPosting[T]) count(lo, hi Bound) int {
	i, j := p.segment(lo, hi)
	n := 0
	for ; i < j; i++ {
		n += len(p.rows[i])
	}
	return n
}

// scan returns the entries inside [lo, hi] restored to bucket-insertion
// order. The slice is freshly allocated and owned by the caller.
func (p *ordPosting[T]) scan(lo, hi Bound) []T {
	i, j := p.segment(lo, hi)
	var ents []ordEntry[T]
	for ; i < j; i++ {
		ents = append(ents, p.rows[i]...)
	}
	sort.Slice(ents, func(a, b int) bool { return ents[a].pos < ents[b].pos })
	out := make([]T, len(ents))
	for k, e := range ents {
		out[k] = e.item
	}
	return out
}

// ordNodePosting returns (building if needed) the ordered index for one
// (label, key) pair.
func (g *Graph) ordNodePosting(label, key string) *ordPosting[*Node] {
	ik := propIndexKey(label, key)
	g.mu.RLock()
	if p := g.ordNodeIdx[ik]; p != nil {
		g.mu.RUnlock()
		return p
	}
	g.mu.RUnlock()

	g.mu.Lock()
	defer g.mu.Unlock()
	if p := g.ordNodeIdx[ik]; p != nil {
		return p
	}
	ids := g.nodesByLabel[label]
	ns := make([]*Node, 0, len(ids))
	for _, id := range ids {
		if n := g.nodes[id]; n != nil {
			ns = append(ns, n)
		}
	}
	p := buildOrdPosting(ns, func(n *Node) (string, bool) {
		v, ok := n.Props[key]
		if !ok || v.IsNull() {
			return "", false
		}
		return v.SortKey(), true
	})
	if g.ordNodeIdx == nil {
		g.ordNodeIdx = make(map[string]*ordPosting[*Node])
	}
	g.ordNodeIdx[ik] = p
	g.ordBuilds.Add(1)
	return p
}

// ordEdgePosting returns (building if needed) the ordered index for one
// (type, key) pair.
func (g *Graph) ordEdgePosting(typ, key string) *ordPosting[*Edge] {
	ik := propIndexKey(typ, key)
	g.mu.RLock()
	if p := g.ordEdgeIdx[ik]; p != nil {
		g.mu.RUnlock()
		return p
	}
	g.mu.RUnlock()

	g.mu.Lock()
	defer g.mu.Unlock()
	if p := g.ordEdgeIdx[ik]; p != nil {
		return p
	}
	ids := g.edgesByType[typ]
	es := make([]*Edge, 0, len(ids))
	for _, id := range ids {
		if e := g.edges[id]; e != nil {
			es = append(es, e)
		}
	}
	p := buildOrdPosting(es, func(e *Edge) (string, bool) {
		v, ok := e.Props[key]
		if !ok || v.IsNull() {
			return "", false
		}
		return v.SortKey(), true
	})
	if g.ordEdgeIdx == nil {
		g.ordEdgeIdx = make(map[string]*ordPosting[*Edge])
	}
	g.ordEdgeIdx[ik] = p
	g.ordEdges.Add(1)
	return p
}

// LabelPropRange returns the nodes carrying the label whose property key
// falls inside [lo, hi], in label-bucket (insertion) order. The slice is
// freshly allocated and owned by the caller.
func (g *Graph) LabelPropRange(label, key string, lo, hi Bound) []*Node {
	p := g.ordNodePosting(label, key)
	out := p.scan(lo, hi)
	g.ordSeeks.Add(1)
	g.ordRows.Add(int64(len(out)))
	return out
}

// LabelPropRangeCount returns how many nodes LabelPropRange would yield,
// without materializing or sorting them (the planner's selectivity probe).
func (g *Graph) LabelPropRangeCount(label, key string, lo, hi Bound) int {
	return g.ordNodePosting(label, key).count(lo, hi)
}

// TypePropRange returns the edges carrying the type whose property key
// falls inside [lo, hi], in type-bucket (insertion) order. The slice is
// freshly allocated and owned by the caller.
func (g *Graph) TypePropRange(typ, key string, lo, hi Bound) []*Edge {
	p := g.ordEdgePosting(typ, key)
	out := p.scan(lo, hi)
	g.ordSeeks.Add(1)
	g.ordRows.Add(int64(len(out)))
	return out
}

// TypePropRangeCount returns how many edges TypePropRange would yield.
func (g *Graph) TypePropRangeCount(typ, key string, lo, hi Bound) int {
	return g.ordEdgePosting(typ, key).count(lo, hi)
}

// TypePropEdges returns the edges carrying the type whose property key
// equals v, in type-bucket (insertion) order — the edge analogue of
// LabelPropNodes, served from the same ordered posting (equality is the
// degenerate closed interval [v, v]).
func (g *Graph) TypePropEdges(typ, key string, v Value) []*Edge {
	if v.IsNull() {
		return nil // null never equals anything, including stored nulls
	}
	b := ValueBound(v, true)
	return g.TypePropRange(typ, key, b, b)
}

// IndexStats snapshots every index counter: the node equality posting maps
// (builds/lookups/live, also available via PropIndexStats) and the ordered
// node/edge indexes (builds, seeks, rows returned, live posting lists).
type IndexStats struct {
	EqBuilds, EqLookups, EqLive int
	OrdNodeBuilds               int
	OrdEdgeBuilds               int
	OrdSeeks, OrdRows           int
	OrdNodeLive, OrdEdgeLive    int
}

// IndexStats reports the combined equality and ordered index counters.
func (g *Graph) IndexStats() IndexStats {
	g.mu.RLock()
	eqLive := len(g.propIndex)
	nodeLive := len(g.ordNodeIdx)
	edgeLive := len(g.ordEdgeIdx)
	g.mu.RUnlock()
	return IndexStats{
		EqBuilds:      int(g.idxBuilds.Load()),
		EqLookups:     int(g.idxLookups.Load()),
		EqLive:        eqLive,
		OrdNodeBuilds: int(g.ordBuilds.Load()),
		OrdEdgeBuilds: int(g.ordEdges.Load()),
		OrdSeeks:      int(g.ordSeeks.Load()),
		OrdRows:       int(g.ordRows.Load()),
		OrdNodeLive:   nodeLive,
		OrdEdgeLive:   edgeLive,
	}
}
