// Package graph implements an in-memory property-graph store: multi-label
// nodes and edges carrying typed key/value properties, with label and
// property indexes, schema extraction and basic statistics.
//
// The model follows the property-graph definition used by the paper
// (Bonifati et al., "Querying Graphs"): both nodes and edges may have
// multiple labels, and both carry properties.
package graph

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Kind enumerates the dynamic types a property Value can hold.
type Kind uint8

const (
	KindNull Kind = iota
	KindBool
	KindInt
	KindFloat
	KindString
	KindList
)

// String returns the lowercase name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindBool:
		return "bool"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindString:
		return "string"
	case KindList:
		return "list"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Value is a dynamically typed property value. The zero Value is null.
// Values are immutable by convention: callers must not mutate the list
// returned by List().
type Value struct {
	kind Kind
	b    bool
	i    int64
	f    float64
	s    string
	l    []Value
}

// Null is the null value.
var Null = Value{}

// NewBool returns a boolean value.
func NewBool(b bool) Value { return Value{kind: KindBool, b: b} }

// NewInt returns an integer value.
func NewInt(i int64) Value { return Value{kind: KindInt, i: i} }

// NewFloat returns a floating-point value.
func NewFloat(f float64) Value { return Value{kind: KindFloat, f: f} }

// NewString returns a string value.
func NewString(s string) Value { return Value{kind: KindString, s: s} }

// NewList returns a list value wrapping vs. The slice is retained.
func NewList(vs ...Value) Value { return Value{kind: KindList, l: vs} }

// Of converts a native Go value into a Value. Supported inputs: nil, bool,
// all int/uint widths, float32/64, string, []Value, and slices of the
// former. Unsupported inputs yield null.
func Of(v any) Value {
	switch x := v.(type) {
	case nil:
		return Null
	case Value:
		return x
	case bool:
		return NewBool(x)
	case int:
		return NewInt(int64(x))
	case int8:
		return NewInt(int64(x))
	case int16:
		return NewInt(int64(x))
	case int32:
		return NewInt(int64(x))
	case int64:
		return NewInt(x)
	case uint:
		return NewInt(int64(x))
	case uint8:
		return NewInt(int64(x))
	case uint16:
		return NewInt(int64(x))
	case uint32:
		return NewInt(int64(x))
	case uint64:
		return NewInt(int64(x))
	case float32:
		return NewFloat(float64(x))
	case float64:
		return NewFloat(x)
	case string:
		return NewString(x)
	case []Value:
		return NewList(x...)
	case []string:
		out := make([]Value, len(x))
		for i, s := range x {
			out[i] = NewString(s)
		}
		return NewList(out...)
	case []int:
		out := make([]Value, len(x))
		for i, n := range x {
			out[i] = NewInt(int64(n))
		}
		return NewList(out...)
	case []any:
		out := make([]Value, len(x))
		for i, e := range x {
			out[i] = Of(e)
		}
		return NewList(out...)
	default:
		return Null
	}
}

// Kind reports the dynamic type of the value.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether the value is null.
func (v Value) IsNull() bool { return v.kind == KindNull }

// Bool returns the boolean payload; valid only when Kind is KindBool.
func (v Value) Bool() bool { return v.b }

// Int returns the integer payload; valid only when Kind is KindInt.
func (v Value) Int() int64 { return v.i }

// Float returns the float payload; valid only when Kind is KindFloat.
func (v Value) Float() float64 { return v.f }

// Str returns the string payload; valid only when Kind is KindString.
func (v Value) Str() string { return v.s }

// List returns the list payload; valid only when Kind is KindList.
func (v Value) List() []Value { return v.l }

// AsFloat returns the numeric payload widened to float64 and whether the
// value is numeric.
func (v Value) AsFloat() (float64, bool) {
	switch v.kind {
	case KindInt:
		return float64(v.i), true
	case KindFloat:
		return v.f, true
	default:
		return 0, false
	}
}

// Truthy reports whether the value is the boolean true. Non-boolean values
// are never truthy (Cypher boolean semantics reject them at type level; we
// coerce to false).
func (v Value) Truthy() bool { return v.kind == KindBool && v.b }

// Equal reports strict equality between two values. Numeric values compare
// across int/float. Null equals nothing, not even null (SQL/Cypher
// three-valued logic collapses to false here; use IsNull for null checks).
func (v Value) Equal(o Value) bool {
	if v.kind == KindNull || o.kind == KindNull {
		return false
	}
	if fa, ok := v.AsFloat(); ok {
		if fb, okb := o.AsFloat(); okb {
			return fa == fb
		}
		return false
	}
	if v.kind != o.kind {
		return false
	}
	switch v.kind {
	case KindBool:
		return v.b == o.b
	case KindString:
		return v.s == o.s
	case KindList:
		if len(v.l) != len(o.l) {
			return false
		}
		for i := range v.l {
			if v.l[i].IsNull() && o.l[i].IsNull() {
				continue
			}
			if !v.l[i].Equal(o.l[i]) {
				return false
			}
		}
		return true
	default:
		return false
	}
}

// Compare orders two values. It returns <0, 0, >0 like strings.Compare and
// ok=false when the pair is incomparable (mixed non-numeric kinds or any
// null).
func (v Value) Compare(o Value) (int, bool) {
	if v.kind == KindNull || o.kind == KindNull {
		return 0, false
	}
	if fa, ok := v.AsFloat(); ok {
		if fb, okb := o.AsFloat(); okb {
			switch {
			case fa < fb:
				return -1, true
			case fa > fb:
				return 1, true
			default:
				return 0, true
			}
		}
		return 0, false
	}
	if v.kind != o.kind {
		return 0, false
	}
	switch v.kind {
	case KindString:
		return strings.Compare(v.s, o.s), true
	case KindBool:
		a, b := 0, 0
		if v.b {
			a = 1
		}
		if o.b {
			b = 1
		}
		return a - b, true
	default:
		return 0, false
	}
}

// SortKey returns a total-order key usable for deterministic ordering of
// heterogeneous values (nulls last, then bools, numbers, strings, lists).
func (v Value) SortKey() string {
	switch v.kind {
	case KindNull:
		return "\xff"
	case KindBool:
		if v.b {
			return "0:1"
		}
		return "0:0"
	case KindInt, KindFloat:
		f, _ := v.AsFloat()
		// Encode so lexicographic order matches numeric order.
		bits := math.Float64bits(f)
		if f >= 0 {
			bits |= 1 << 63
		} else {
			bits = ^bits
		}
		return fmt.Sprintf("1:%016x", bits)
	case KindString:
		return "2:" + v.s
	case KindList:
		parts := make([]string, len(v.l))
		for i, e := range v.l {
			parts[i] = e.SortKey()
		}
		return "3:" + strings.Join(parts, "\x00")
	default:
		return "9"
	}
}

// Hashable returns a canonical string key for grouping/distinct semantics.
// Unlike Equal, two nulls share the same hashable key (Cypher grouping
// treats nulls as one group).
func (v Value) Hashable() string { return v.SortKey() }

// String renders the value in a Cypher-literal-like form.
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "null"
	case KindBool:
		return strconv.FormatBool(v.b)
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindString:
		return strconv.Quote(v.s)
	case KindList:
		parts := make([]string, len(v.l))
		for i, e := range v.l {
			parts[i] = e.String()
		}
		return "[" + strings.Join(parts, ", ") + "]"
	default:
		return "?"
	}
}

// Display renders the value for human output: strings unquoted, everything
// else as String.
func (v Value) Display() string {
	if v.kind == KindString {
		return v.s
	}
	return v.String()
}

// Props is a property map from key to value.
type Props map[string]Value

// Clone returns a shallow copy of the property map.
func (p Props) Clone() Props {
	if p == nil {
		return nil
	}
	out := make(Props, len(p))
	for k, v := range p {
		out[k] = v
	}
	return out
}

// Keys returns the sorted property keys.
func (p Props) Keys() []string {
	keys := make([]string, 0, len(p))
	for k := range p {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
