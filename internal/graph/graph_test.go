package graph

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
	"testing/quick"
)

func testGraph(t testing.TB) (*Graph, *Node, *Node, *Node) {
	g := New("test")
	a := g.AddNode([]string{"User"}, Props{"name": NewString("alice"), "id": NewInt(1)})
	b := g.AddNode([]string{"User"}, Props{"name": NewString("bob"), "id": NewInt(2)})
	tw := g.AddNode([]string{"Tweet"}, Props{"id": NewInt(100), "text": NewString("hello")})
	if _, err := g.AddEdge(a.ID, tw.ID, []string{"POSTS"}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddEdge(a.ID, b.ID, []string{"FOLLOWS"}, Props{"since": NewInt(2020)}); err != nil {
		t.Fatal(err)
	}
	return g, a, b, tw
}

func TestAddNodeAndLookup(t *testing.T) {
	g, a, _, tw := testGraph(t)
	if g.NodeCount() != 3 {
		t.Fatalf("NodeCount = %d", g.NodeCount())
	}
	if got := g.Node(a.ID); got == nil || got.Prop("name").Str() != "alice" {
		t.Errorf("Node(a) = %+v", got)
	}
	if !tw.HasLabel("Tweet") || tw.HasLabel("User") {
		t.Error("HasLabel wrong")
	}
	if g.Node(999) != nil {
		t.Error("missing node should be nil")
	}
	if !a.Prop("missing").IsNull() {
		t.Error("missing prop should be null")
	}
}

func TestAddEdgeValidation(t *testing.T) {
	g := New("v")
	n := g.AddNode([]string{"X"}, nil)
	if _, err := g.AddEdge(n.ID, 42, []string{"R"}, nil); err == nil {
		t.Error("want error for missing target")
	}
	if _, err := g.AddEdge(42, n.ID, []string{"R"}, nil); err == nil {
		t.Error("want error for missing source")
	}
	if _, err := g.AddEdge(n.ID, n.ID, nil, nil); err == nil {
		t.Error("want error for unlabeled edge")
	}
	if _, err := g.AddEdge(n.ID, n.ID, []string{"SELF"}, nil); err != nil {
		t.Errorf("self loop should be allowed: %v", err)
	}
}

func TestMustAddEdgePanics(t *testing.T) {
	g := New("p")
	defer func() {
		if recover() == nil {
			t.Error("MustAddEdge should panic on invalid endpoints")
		}
	}()
	g.MustAddEdge(1, 2, []string{"R"}, nil)
}

func TestIndexesAndAdjacency(t *testing.T) {
	g, a, b, tw := testGraph(t)
	if got := g.NodesWithLabel("User"); len(got) != 2 {
		t.Errorf("NodesWithLabel(User) = %v", got)
	}
	if got := g.EdgesWithType("POSTS"); len(got) != 1 {
		t.Errorf("EdgesWithType(POSTS) = %v", got)
	}
	if g.OutDegree(a.ID) != 2 || g.InDegree(a.ID) != 0 {
		t.Errorf("degrees of a: out=%d in=%d", g.OutDegree(a.ID), g.InDegree(a.ID))
	}
	if g.InDegree(tw.ID) != 1 || g.InDegree(b.ID) != 1 {
		t.Error("in-degrees wrong")
	}
	outs := g.OutEdges(a.ID)
	if len(outs) != 2 {
		t.Fatalf("OutEdges = %v", outs)
	}
	e := g.Edge(outs[0])
	if e.From != a.ID {
		t.Error("edge From wrong")
	}
	if e.Type() != "POSTS" {
		t.Errorf("Type = %q", e.Type())
	}
	if !reflect.DeepEqual(g.NodeLabels(), []string{"Tweet", "User"}) {
		t.Errorf("NodeLabels = %v", g.NodeLabels())
	}
	if !reflect.DeepEqual(g.EdgeTypes(), []string{"FOLLOWS", "POSTS"}) {
		t.Errorf("EdgeTypes = %v", g.EdgeTypes())
	}
}

func TestMultiLabel(t *testing.T) {
	g := New("ml")
	n := g.AddNode([]string{"Person", "Player", "Person", ""}, nil)
	if !reflect.DeepEqual(n.Labels, []string{"Person", "Player"}) {
		t.Errorf("Labels = %v (dedupe/blank-strip failed)", n.Labels)
	}
	if len(g.NodesWithLabel("Person")) != 1 || len(g.NodesWithLabel("Player")) != 1 {
		t.Error("multi-label index wrong")
	}
	m := g.AddNode([]string{"Person"}, nil)
	e := g.MustAddEdge(n.ID, m.ID, []string{"KNOWS", "LIKES"}, nil)
	if e.Type() != "KNOWS" || !e.HasLabel("LIKES") {
		t.Error("edge multi-label wrong")
	}
	if len(g.EdgesWithType("LIKES")) != 1 {
		t.Error("edge secondary label not indexed")
	}
	var anon Edge
	if anon.Type() != "" {
		t.Error("unlabeled edge Type should be empty")
	}
}

func TestSetProps(t *testing.T) {
	g, a, _, _ := testGraph(t)
	if err := g.SetNodeProp(a.ID, "age", NewInt(30)); err != nil {
		t.Fatal(err)
	}
	if g.Node(a.ID).Prop("age").Int() != 30 {
		t.Error("SetNodeProp failed")
	}
	if err := g.SetNodeProp(a.ID, "age", Null); err != nil {
		t.Fatal(err)
	}
	if !g.Node(a.ID).Prop("age").IsNull() {
		t.Error("null SetNodeProp should delete")
	}
	if err := g.SetNodeProp(999, "x", NewInt(1)); err == nil {
		t.Error("want error for missing node")
	}
	eid := g.OutEdges(a.ID)[0]
	if err := g.SetEdgeProp(eid, "w", NewFloat(0.5)); err != nil {
		t.Fatal(err)
	}
	if g.Edge(eid).Prop("w").Float() != 0.5 {
		t.Error("SetEdgeProp failed")
	}
	if err := g.SetEdgeProp(999, "x", Null); err == nil {
		t.Error("want error for missing edge")
	}
}

func TestRemoveEdge(t *testing.T) {
	g, a, b, _ := testGraph(t)
	var followsID ID = -1
	g.ForEachEdge(func(e *Edge) {
		if e.Type() == "FOLLOWS" {
			followsID = e.ID
		}
	})
	g.RemoveEdge(followsID)
	if g.EdgeCount() != 1 {
		t.Fatalf("EdgeCount = %d", g.EdgeCount())
	}
	if g.OutDegree(a.ID) != 1 || g.InDegree(b.ID) != 0 {
		t.Error("adjacency not updated")
	}
	if len(g.EdgesWithType("FOLLOWS")) != 0 {
		t.Error("type index not updated")
	}
	g.RemoveEdge(followsID) // idempotent
	if g.EdgeCount() != 1 {
		t.Error("double remove changed count")
	}
}

func TestRemoveNodeCascades(t *testing.T) {
	g, a, _, _ := testGraph(t)
	g.RemoveNode(a.ID)
	if g.NodeCount() != 2 {
		t.Fatalf("NodeCount = %d", g.NodeCount())
	}
	if g.EdgeCount() != 0 {
		t.Errorf("EdgeCount = %d, incident edges should cascade", g.EdgeCount())
	}
	if len(g.NodesWithLabel("User")) != 1 {
		t.Error("label index not updated")
	}
	g.RemoveNode(a.ID) // idempotent
}

func TestForEachOrdering(t *testing.T) {
	g, _, _, _ := testGraph(t)
	var nodeIDs, edgeIDs []ID
	g.ForEachNode(func(n *Node) { nodeIDs = append(nodeIDs, n.ID) })
	g.ForEachEdge(func(e *Edge) { edgeIDs = append(edgeIDs, e.ID) })
	for i := 1; i < len(nodeIDs); i++ {
		if nodeIDs[i] <= nodeIDs[i-1] {
			t.Fatal("ForEachNode not ascending")
		}
	}
	for i := 1; i < len(edgeIDs); i++ {
		if edgeIDs[i] <= edgeIDs[i-1] {
			t.Fatal("ForEachEdge not ascending")
		}
	}
}

func TestConcurrentReaders(t *testing.T) {
	g, _, _, _ := testGraph(t)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				_ = g.NodeCount()
				_ = g.NodesWithLabel("User")
				g.ForEachNode(func(n *Node) { _ = n.Prop("name") })
			}
		}()
	}
	wg.Wait()
}

func TestConcurrentWriters(t *testing.T) {
	g := New("cw")
	root := g.AddNode([]string{"Root"}, nil)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				n := g.AddNode([]string{fmt.Sprintf("L%d", k)}, Props{"j": NewInt(int64(j))})
				g.MustAddEdge(root.ID, n.ID, []string{"HAS"}, nil)
			}
		}(i)
	}
	wg.Wait()
	if g.NodeCount() != 401 {
		t.Errorf("NodeCount = %d, want 401", g.NodeCount())
	}
	if g.EdgeCount() != 400 {
		t.Errorf("EdgeCount = %d, want 400", g.EdgeCount())
	}
	if g.OutDegree(root.ID) != 400 {
		t.Errorf("OutDegree(root) = %d", g.OutDegree(root.ID))
	}
}

// Property: for any sequence of node insertions, every label index entry
// resolves to a node carrying that label, and counts are consistent.
func TestLabelIndexConsistencyProperty(t *testing.T) {
	f := func(labelSel []uint8) bool {
		g := New("q")
		labels := []string{"A", "B", "C"}
		for _, s := range labelSel {
			g.AddNode([]string{labels[int(s)%3]}, nil)
		}
		total := 0
		for _, l := range labels {
			for _, id := range g.NodesWithLabel(l) {
				if !g.Node(id).HasLabel(l) {
					return false
				}
				total++
			}
		}
		return total == g.NodeCount()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: removing a random subset of edges never leaves dangling
// adjacency entries.
func TestRemoveEdgeConsistencyProperty(t *testing.T) {
	f := func(seedEdges []uint8, removeMask []bool) bool {
		g := New("q")
		var ids []ID
		for i := 0; i < 10; i++ {
			ids = append(ids, g.AddNode([]string{"N"}, nil).ID)
		}
		var eids []ID
		for _, b := range seedEdges {
			from := ids[int(b)%10]
			to := ids[int(b>>4)%10]
			eids = append(eids, g.MustAddEdge(from, to, []string{"E"}, nil).ID)
		}
		for i, eid := range eids {
			if i < len(removeMask) && removeMask[i] {
				g.RemoveEdge(eid)
			}
		}
		// Every adjacency entry must resolve to a live edge.
		for _, nid := range g.Nodes() {
			for _, eid := range g.OutEdges(nid) {
				e := g.Edge(eid)
				if e == nil || e.From != nid {
					return false
				}
			}
			for _, eid := range g.InEdges(nid) {
				e := g.Edge(eid)
				if e == nil || e.To != nid {
					return false
				}
			}
		}
		return len(g.EdgesWithType("E")) == g.EdgeCount()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestAddNodeLabels(t *testing.T) {
	g := New("al")
	n := g.AddNode([]string{"A"}, nil)
	if err := g.AddNodeLabels(n.ID, "B", "A", ""); err != nil {
		t.Fatal(err)
	}
	got := g.Node(n.ID)
	if !got.HasLabel("B") || len(got.Labels) != 2 {
		t.Errorf("labels = %v", got.Labels)
	}
	if len(g.NodesWithLabel("B")) != 1 {
		t.Error("new label not indexed")
	}
	if err := g.AddNodeLabels(999, "X"); err == nil {
		t.Error("missing node should error")
	}
	// Re-adding an existing label must not duplicate the index entry.
	if err := g.AddNodeLabels(n.ID, "B"); err != nil {
		t.Fatal(err)
	}
	if len(g.NodesWithLabel("B")) != 1 {
		t.Error("duplicate label indexed twice")
	}
}
