package graph

import (
	"sort"
	"strings"
)

// This file holds the graph's lazily-built read caches: the label+property
// value index consulted by the Cypher matcher's equality pushdown, and bulk
// node/edge pointer snapshots that let hot scan loops acquire the graph
// lock once per scan instead of once per element.
//
// All caches are built on first use under the write lock and invalidated
// incrementally by mutation: a node mutation (AddNode, SetNodeProp,
// AddNodeLabels, RemoveNode) drops only the postings and label snapshots of
// the labels the node carries — plus the allPtrs snapshot, which spans every
// label — and an edge mutation (AddEdge, SetEdgeProp, RemoveEdge) drops only
// the ordered edge postings of the edge's types. Node-only mutations never
// touch edge postings and vice versa. Returned slices are shared read-only
// snapshots: callers must not modify them, and a concurrent writer only ever
// swaps in fresh slices, never mutates a published one.

// invalidateNodeLabelsLocked drops the lazily-built node caches touched by a
// mutation of a node carrying the given labels: the equality and ordered
// postings under those labels, those labels' pointer snapshots, and always
// the all-nodes snapshot. Callers must hold the write lock.
func (g *Graph) invalidateNodeLabelsLocked(labels []string) {
	g.allPtrs = nil
	if len(labels) == 0 {
		return
	}
	for _, l := range labels {
		delete(g.labelPtrs, l)
		prefix := l + "\x00"
		for k := range g.propIndex {
			if strings.HasPrefix(k, prefix) {
				delete(g.propIndex, k)
			}
		}
		for k := range g.ordNodeIdx {
			if strings.HasPrefix(k, prefix) {
				delete(g.ordNodeIdx, k)
			}
		}
	}
}

// invalidateEdgeLabelsLocked drops the ordered edge postings under the given
// edge types. Callers must hold the write lock.
func (g *Graph) invalidateEdgeLabelsLocked(labels []string) {
	if len(g.ordEdgeIdx) == 0 {
		return
	}
	for _, l := range labels {
		prefix := l + "\x00"
		for k := range g.ordEdgeIdx {
			if strings.HasPrefix(k, prefix) {
				delete(g.ordEdgeIdx, k)
			}
		}
	}
}

// propIndexKey joins a label and a property key into one posting-map key.
// NUL never appears in identifiers, so the join is unambiguous.
func propIndexKey(label, key string) string { return label + "\x00" + key }

// LabelPropNodes returns the nodes carrying the label whose property key
// equals v, in label-bucket (insertion) order. The posting map for the
// (label, key) pair is built lazily on first use; subsequent lookups are a
// map probe. The returned slice is a shared read-only snapshot.
func (g *Graph) LabelPropNodes(label, key string, v Value) []*Node {
	if v.IsNull() {
		return nil // null never equals anything, including stored nulls
	}
	sk := v.SortKey()
	g.idxLookups.Add(1)
	g.mu.RLock()
	if idx := g.propIndex[propIndexKey(label, key)]; idx != nil {
		ns := idx[sk]
		g.mu.RUnlock()
		return ns
	}
	g.mu.RUnlock()

	g.mu.Lock()
	defer g.mu.Unlock()
	idx := g.propIndex[propIndexKey(label, key)]
	if idx == nil {
		idx = make(map[string][]*Node)
		for _, id := range g.nodesByLabel[label] {
			n := g.nodes[id]
			if n == nil {
				continue
			}
			pv, ok := n.Props[key]
			if !ok || pv.IsNull() {
				continue
			}
			k := pv.SortKey()
			idx[k] = append(idx[k], n)
		}
		if g.propIndex == nil {
			g.propIndex = make(map[string]map[string][]*Node)
		}
		g.propIndex[propIndexKey(label, key)] = idx
		g.idxBuilds.Add(1)
	}
	return idx[sk]
}

// LabelNodes returns the nodes carrying the label in insertion order as a
// shared read-only snapshot (the pointer analogue of NodesWithLabel).
func (g *Graph) LabelNodes(label string) []*Node {
	g.mu.RLock()
	if ns, ok := g.labelPtrs[label]; ok {
		g.mu.RUnlock()
		return ns
	}
	g.mu.RUnlock()

	g.mu.Lock()
	defer g.mu.Unlock()
	if ns, ok := g.labelPtrs[label]; ok {
		return ns
	}
	ids := g.nodesByLabel[label]
	ns := make([]*Node, 0, len(ids))
	for _, id := range ids {
		if n := g.nodes[id]; n != nil {
			ns = append(ns, n)
		}
	}
	if g.labelPtrs == nil {
		g.labelPtrs = make(map[string][]*Node)
	}
	g.labelPtrs[label] = ns
	return ns
}

// AllNodes returns every node in ascending ID order as a shared read-only
// snapshot.
func (g *Graph) AllNodes() []*Node {
	g.mu.RLock()
	if g.allPtrs != nil {
		ns := g.allPtrs
		g.mu.RUnlock()
		return ns
	}
	g.mu.RUnlock()

	g.mu.Lock()
	defer g.mu.Unlock()
	if g.allPtrs == nil {
		ns := make([]*Node, 0, len(g.nodes))
		for _, n := range g.nodes {
			ns = append(ns, n)
		}
		sort.Slice(ns, func(i, j int) bool { return ns[i].ID < ns[j].ID })
		g.allPtrs = ns
	}
	return g.allPtrs
}

// OutEdgePtrs returns the edges leaving the node. The slice is freshly
// allocated under one lock acquisition and owned by the caller.
func (g *Graph) OutEdgePtrs(node ID) []*Edge {
	g.mu.RLock()
	defer g.mu.RUnlock()
	ids := g.out[node]
	es := make([]*Edge, 0, len(ids))
	for _, id := range ids {
		if e := g.edges[id]; e != nil {
			es = append(es, e)
		}
	}
	return es
}

// InEdgePtrs returns the edges entering the node; see OutEdgePtrs.
func (g *Graph) InEdgePtrs(node ID) []*Edge {
	g.mu.RLock()
	defer g.mu.RUnlock()
	ids := g.in[node]
	es := make([]*Edge, 0, len(ids))
	for _, id := range ids {
		if e := g.edges[id]; e != nil {
			es = append(es, e)
		}
	}
	return es
}

// PropIndexStats reports how many (label, key) posting maps have been
// built, how many lookups they served, and how many are currently live.
func (g *Graph) PropIndexStats() (builds, lookups, live int) {
	g.mu.RLock()
	live = len(g.propIndex)
	g.mu.RUnlock()
	return int(g.idxBuilds.Load()), int(g.idxLookups.Load()), live
}
