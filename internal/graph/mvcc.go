package graph

// Epoch-based MVCC for the in-memory graph.
//
// Every write — a single exported mutator call or a whole Batch — commits
// as one *epoch*: it runs under the writer lock, performs one deduplicated
// cache invalidation, bumps the generation counter, and (when subscribers
// are registered) publishes a Delta describing exactly what changed.
// Readers pin an epoch by taking Snapshot(): a frozen *Graph view sharing
// the immutable node/edge structs and slice storage with the live graph.
// The snapshot is materialized at most once per epoch and cached, so under
// a batched write workload its amortized cost is O(changed)/mutation, and
// a scan that runs entirely against a snapshot observes one epoch no
// matter how many writers commit mid-scan.
//
// Invariants making the sharing safe:
//
//   - published *Node/*Edge structs are never mutated (copy-on-write swap);
//   - published []ID slices are never written in place: removals allocate
//     (removeID), and appends only ever write past a snapshot's fixed
//     length;
//   - a snapshot copies the top-level maps, so key insertions/deletions on
//     the live graph are invisible to it.

import (
	"fmt"
	"sort"
)

// OpKind identifies one buffered mutation inside a Batch / Delta.
type OpKind uint8

// Batch operation kinds.
const (
	OpAddNode OpKind = iota + 1
	OpAddEdge
	OpSetNodeProp
	OpSetEdgeProp
	OpAddLabels
	OpRemoveNode
	OpRemoveEdge
)

// String returns the kebab-case name of the op kind.
func (k OpKind) String() string {
	switch k {
	case OpAddNode:
		return "add-node"
	case OpAddEdge:
		return "add-edge"
	case OpSetNodeProp:
		return "set-node-prop"
	case OpSetEdgeProp:
		return "set-edge-prop"
	case OpAddLabels:
		return "add-labels"
	case OpRemoveNode:
		return "remove-node"
	case OpRemoveEdge:
		return "remove-edge"
	default:
		return fmt.Sprintf("op(%d)", uint8(k))
	}
}

// Op is one mutation inside an epoch, in apply order. For OpAddNode /
// OpAddEdge, Node / Edge is the struct that was (or will be) published; for
// OpRemoveNode / OpRemoveEdge it is the struct that was removed (nil until
// the epoch commits). Structs must be treated as immutable.
type Op struct {
	Kind   OpKind
	Node   *Node
	Edge   *Edge
	ID     ID
	Key    string
	Value  Value
	Labels []string
}

// ElemDelta summarizes one epoch's changes to the elements carrying a
// label (nodes) or type (edges). Structural means membership changed — an
// element was added, removed, or gained the label — which invalidates any
// derived count over the label; Keys lists the property keys whose values
// changed on surviving elements.
type ElemDelta struct {
	Structural bool
	Keys       map[string]bool
}

func (e *ElemDelta) note(structural bool, keys []string) {
	if structural {
		e.Structural = true
	}
	for _, k := range keys {
		if e.Keys == nil {
			e.Keys = map[string]bool{}
		}
		e.Keys[k] = true
	}
}

// Delta is the published change summary of one committed epoch. Nodes and
// Edges list touched element IDs (in op order, duplicates possible);
// NodeChanges / EdgeChanges aggregate the changes per label / edge type,
// with the empty label standing for unlabeled nodes. Ops is the exact
// mutation list, usable to re-log or replicate the epoch.
type Delta struct {
	Epoch uint64
	Ops   []Op

	NodeChanges map[string]*ElemDelta
	EdgeChanges map[string]*ElemDelta

	Nodes []ID
	Edges []ID
}

func newDelta() *Delta {
	return &Delta{NodeChanges: map[string]*ElemDelta{}, EdgeChanges: map[string]*ElemDelta{}}
}

func noteElem(m map[string]*ElemDelta, labels []string, structural bool, keys []string) {
	if len(labels) == 0 {
		labels = []string{""}
	}
	for _, l := range labels {
		ed := m[l]
		if ed == nil {
			ed = &ElemDelta{}
			m[l] = ed
		}
		ed.note(structural, keys)
	}
}

func (d *Delta) noteNode(labels []string, structural bool, keys ...string) {
	noteElem(d.NodeChanges, labels, structural, keys)
}

func (d *Delta) noteEdge(labels []string, structural bool, keys ...string) {
	noteElem(d.EdgeChanges, labels, structural, keys)
}

// Empty reports whether the delta carries no changes.
func (d *Delta) Empty() bool {
	return len(d.Ops) == 0 && len(d.NodeChanges) == 0 && len(d.EdgeChanges) == 0
}

// ---------- writer epoch plumbing ----------

// beginWrite enters a single-mutation write epoch: it serializes against
// other writers (commitMu), takes the structure lock, and returns a Delta
// to record into when subscribers are registered (nil otherwise). Mutating
// a frozen snapshot view is a programming error and panics.
//
// Both locks are intentionally held at return; endWrite/abortWrite release
// them.
//
//graphrules:locktransfer
func (g *Graph) beginWrite() *Delta {
	if g.frozen {
		panic("graph: mutation of a frozen snapshot view")
	}
	g.commitMu.Lock()
	g.mu.Lock()
	if g.hasSubscribers() {
		return newDelta()
	}
	return nil
}

// endWrite commits the epoch started by beginWrite: drops the cached
// snapshot, bumps the epoch counter, releases the locks and delivers the
// delta (when recorded) to subscribers in commit order.
func (g *Graph) endWrite(d *Delta) {
	g.snap = nil
	epoch := g.epoch.Add(1)
	g.mu.Unlock()
	if d != nil {
		d.Epoch = epoch
		g.deliver(d)
	}
	g.commitMu.Unlock()
}

// abortWrite abandons a write epoch without bumping the counter (the
// mutation failed validation or was a no-op).
func (g *Graph) abortWrite() {
	g.mu.Unlock()
	g.commitMu.Unlock()
}

// Epoch returns the number of committed write epochs. Two reads of an
// unchanged graph observe the same epoch; any mutation advances it.
func (g *Graph) Epoch() uint64 { return g.epoch.Load() }

// IsSnapshot reports whether g is a frozen epoch snapshot view.
func (g *Graph) IsSnapshot() bool { return g.frozen }

// ---------- subscribers ----------

// OnCommit registers fn to be called after every committed epoch with that
// epoch's Delta. Callbacks run synchronously on the committing goroutine,
// in epoch order (writer commits are serialized), and must not mutate the
// graph — doing so would self-deadlock on the commit lock. Reading the
// graph (or its Snapshot) from a callback is safe and observes exactly the
// committed epoch, because delivery happens before the next writer may
// commit. The returned cancel function unregisters the callback.
func (g *Graph) OnCommit(fn func(*Delta)) (cancel func()) {
	g.subMu.Lock()
	if g.subs == nil {
		g.subs = map[int]func(*Delta){}
	}
	id := g.nextSub
	g.nextSub++
	g.subs[id] = fn
	g.subMu.Unlock()
	return func() {
		g.subMu.Lock()
		delete(g.subs, id)
		g.subMu.Unlock()
	}
}

func (g *Graph) hasSubscribers() bool {
	g.subMu.RLock()
	defer g.subMu.RUnlock()
	return len(g.subs) > 0
}

// deliver invokes subscribers in registration order. Called with commitMu
// held (ordering) but without the structure lock (callbacks may read).
func (g *Graph) deliver(d *Delta) {
	g.subMu.RLock()
	if len(g.subs) == 0 {
		g.subMu.RUnlock()
		return
	}
	ids := make([]int, 0, len(g.subs))
	for id := range g.subs {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	fns := make([]func(*Delta), len(ids))
	for i, id := range ids {
		fns[i] = g.subs[id]
	}
	g.subMu.RUnlock()
	for _, fn := range fns {
		fn(d)
	}
}

// ---------- snapshot views ----------

// Snapshot returns a frozen view of the graph pinned to the current epoch.
// The view is a *Graph sharing the immutable node/edge structs and slice
// storage with the live graph, so construction is O(elements) map copying
// — and it is cached: all callers between two commits share one view, so
// under a batched write workload the amortized cost per mutation is small.
// Snapshots serve the full read API (scans, index seeks, schema/stats) but
// panic on any mutation. Snapshot of a snapshot returns the view itself.
func (g *Graph) Snapshot() *Graph {
	if g.frozen {
		return g
	}
	g.mu.RLock()
	if s := g.snap; s != nil {
		g.mu.RUnlock()
		return s
	}
	g.mu.RUnlock()

	g.mu.Lock()
	defer g.mu.Unlock()
	if g.snap == nil {
		g.snap = g.buildSnapshotLocked()
	}
	return g.snap
}

func (g *Graph) buildSnapshotLocked() *Graph {
	s := &Graph{
		name:         g.name,
		frozen:       true,
		nodes:        make(map[ID]*Node, len(g.nodes)),
		edges:        make(map[ID]*Edge, len(g.edges)),
		out:          make(map[ID][]ID, len(g.out)),
		in:           make(map[ID][]ID, len(g.in)),
		nodesByLabel: make(map[string][]ID, len(g.nodesByLabel)),
		edgesByType:  make(map[string][]ID, len(g.edgesByType)),
	}
	for id, n := range g.nodes {
		s.nodes[id] = n
	}
	for id, e := range g.edges {
		s.edges[id] = e
	}
	for id, ids := range g.out {
		s.out[id] = ids
	}
	for id, ids := range g.in {
		s.in[id] = ids
	}
	for l, ids := range g.nodesByLabel {
		s.nodesByLabel[l] = ids
	}
	for l, ids := range g.edgesByType {
		s.edgesByType[l] = ids
	}
	s.nextNodeID.Store(g.nextNodeID.Load())
	s.nextEdgeID.Store(g.nextEdgeID.Load())
	s.epoch.Store(g.epoch.Load())
	return s
}

// ---------- batched write epochs ----------

// Batch buffers mutations and commits them as one atomic epoch: a single
// writer-lock acquisition, one deduplicated cache invalidation, one epoch
// bump, one Delta. Node and edge IDs are reserved eagerly, so AddNode's
// return value can be used by later ops in the same batch; nothing is
// visible to readers until Commit. A Batch is not safe for concurrent use.
//
// Commit is all-or-nothing: every op is validated against the graph state
// at commit time (with the batch's own adds/removes overlaid, in order)
// before anything is applied, so a failed Commit leaves the graph — and
// its epoch counter — untouched.
type Batch struct {
	g         *Graph
	ops       []Op
	committed bool
	err       error
}

// NewBatch starts an empty write batch against the graph.
func (g *Graph) NewBatch() *Batch {
	if g.frozen {
		panic("graph: batch on a frozen snapshot view")
	}
	return &Batch{g: g}
}

// Len returns the number of buffered ops.
func (b *Batch) Len() int { return len(b.ops) }

// AddNode buffers a node insertion and returns the node that Commit will
// publish. The ID is final; the struct must not be mutated.
func (b *Batch) AddNode(labels []string, props Props) *Node {
	n := b.g.newNode(labels, props)
	b.ops = append(b.ops, Op{Kind: OpAddNode, Node: n})
	return n
}

// AddEdge buffers an edge insertion. Endpoints may be pre-existing nodes
// or nodes added earlier in this batch; existence is validated at Commit.
func (b *Batch) AddEdge(from, to ID, labels []string, props Props) (*Edge, error) {
	labels = dedupe(labels)
	if len(labels) == 0 {
		err := fmt.Errorf("graph %q: batch AddEdge: edge requires at least one label", b.g.name)
		b.setErr(err)
		return nil, err
	}
	e := b.g.newEdge(from, to, labels, props)
	b.ops = append(b.ops, Op{Kind: OpAddEdge, Edge: e})
	return e, nil
}

// SetNodeProp buffers a node property update (null deletes the key).
func (b *Batch) SetNodeProp(id ID, key string, v Value) {
	b.ops = append(b.ops, Op{Kind: OpSetNodeProp, ID: id, Key: key, Value: v})
}

// SetEdgeProp buffers an edge property update (null deletes the key).
func (b *Batch) SetEdgeProp(id ID, key string, v Value) {
	b.ops = append(b.ops, Op{Kind: OpSetEdgeProp, ID: id, Key: key, Value: v})
}

// AddNodeLabels buffers a label addition to an existing node.
func (b *Batch) AddNodeLabels(id ID, labels ...string) {
	b.ops = append(b.ops, Op{Kind: OpAddLabels, ID: id, Labels: labels})
}

// RemoveNode buffers a node removal (with its incident edges). Removing a
// node that does not exist at commit time is a no-op, as with the direct
// mutator.
func (b *Batch) RemoveNode(id ID) {
	b.ops = append(b.ops, Op{Kind: OpRemoveNode, ID: id})
}

// RemoveEdge buffers an edge removal; missing edges are a no-op.
func (b *Batch) RemoveEdge(id ID) {
	b.ops = append(b.ops, Op{Kind: OpRemoveEdge, ID: id})
}

func (b *Batch) setErr(err error) {
	if b.err == nil {
		b.err = err
	}
}

// Commit validates and applies every buffered op as one epoch and returns
// the epoch's Delta. On validation failure nothing is applied and the
// epoch counter does not advance. Committing twice is an error; an empty
// batch commits to an empty epoch.
func (b *Batch) Commit() (*Delta, error) {
	if b.committed {
		return nil, fmt.Errorf("graph %q: batch already committed", b.g.name)
	}
	if b.err != nil {
		return nil, b.err
	}
	g := b.g
	g.commitMu.Lock()
	g.mu.Lock()
	if err := g.validateOpsLocked(b.ops); err != nil {
		g.mu.Unlock()
		g.commitMu.Unlock()
		return nil, err
	}
	d := newDelta()
	for i := range b.ops {
		g.applyOpLocked(&b.ops[i], d)
	}
	g.snap = nil
	d.Epoch = g.epoch.Add(1)
	g.mu.Unlock()
	b.committed = true
	g.deliver(d)
	g.commitMu.Unlock()
	return d, nil
}

// validateOpsLocked dry-runs the batch against the current state plus the
// batch's own adds/removes, in order, so Commit is all-or-nothing.
func (g *Graph) validateOpsLocked(ops []Op) error {
	addedN := map[ID]bool{}
	addedE := map[ID]bool{}
	removedN := map[ID]bool{}
	removedE := map[ID]bool{}
	nodeLive := func(id ID) bool {
		if removedN[id] {
			return false
		}
		if addedN[id] {
			return true
		}
		_, ok := g.nodes[id]
		return ok
	}
	edgeLive := func(id ID) bool {
		if removedE[id] {
			return false
		}
		if addedE[id] {
			return true
		}
		_, ok := g.edges[id]
		return ok
	}
	// batchEdges tracks endpoints of edges added in this batch so a later
	// RemoveNode cascades over them during validation.
	batchEdges := map[ID]*Edge{}
	for i := range ops {
		op := &ops[i]
		switch op.Kind {
		case OpAddNode:
			if nodeLive(op.Node.ID) {
				return fmt.Errorf("graph %q: batch op %d: node %d already exists", g.name, i, op.Node.ID)
			}
			addedN[op.Node.ID] = true
			delete(removedN, op.Node.ID)
		case OpAddEdge:
			e := op.Edge
			if !nodeLive(e.From) {
				return fmt.Errorf("graph %q: batch op %d: AddEdge source node %d does not exist", g.name, i, e.From)
			}
			if !nodeLive(e.To) {
				return fmt.Errorf("graph %q: batch op %d: AddEdge target node %d does not exist", g.name, i, e.To)
			}
			addedE[e.ID] = true
			delete(removedE, e.ID)
			batchEdges[e.ID] = e
		case OpSetNodeProp, OpAddLabels:
			if !nodeLive(op.ID) {
				return fmt.Errorf("graph %q: batch op %d: node %d does not exist", g.name, i, op.ID)
			}
		case OpSetEdgeProp:
			if !edgeLive(op.ID) {
				return fmt.Errorf("graph %q: batch op %d: edge %d does not exist", g.name, i, op.ID)
			}
		case OpRemoveNode:
			if !nodeLive(op.ID) {
				continue // no-op, like the direct mutator
			}
			removedN[op.ID] = true
			delete(addedN, op.ID)
			for _, eid := range g.out[op.ID] {
				removedE[eid] = true
			}
			for _, eid := range g.in[op.ID] {
				removedE[eid] = true
			}
			for eid, e := range batchEdges {
				if e.From == op.ID || e.To == op.ID {
					removedE[eid] = true
					delete(addedE, eid)
				}
			}
		case OpRemoveEdge:
			if !edgeLive(op.ID) {
				continue // no-op
			}
			removedE[op.ID] = true
			delete(addedE, op.ID)
		default:
			return fmt.Errorf("graph %q: batch op %d: unknown kind %v", g.name, i, op.Kind)
		}
	}
	return nil
}

// applyOpLocked applies one validated op, recording it into d.
func (g *Graph) applyOpLocked(op *Op, d *Delta) {
	switch op.Kind {
	case OpAddNode:
		g.insertNodeLocked(op.Node, d)
	case OpAddEdge:
		g.insertEdgeLocked(op.Edge, d)
	case OpSetNodeProp:
		// Validated above; the only remaining failure is a node removed by
		// a later-validated path, which validation already simulated.
		_ = g.setNodePropLocked(op.ID, op.Key, op.Value, d)
	case OpSetEdgeProp:
		_ = g.setEdgePropLocked(op.ID, op.Key, op.Value, d)
	case OpAddLabels:
		_ = g.addNodeLabelsLocked(op.ID, op.Labels, d)
	case OpRemoveNode:
		op.Node = g.nodes[op.ID]
		g.removeNodeLocked(op.ID, d)
	case OpRemoveEdge:
		op.Edge = g.edges[op.ID]
		g.removeEdgeLocked(op.ID, d)
	}
}
