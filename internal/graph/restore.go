package graph

import "fmt"

// Restore re-publishes entities that were removed from the graph, keeping
// their original IDs. It exists for compensating writes: transaction
// rollback (internal/cypher's Session) restores the pre-transaction state
// of every touched entity from the Begin-time snapshot, and a replicator
// could use the same calls to undo a rejected epoch. Ordinary inserts must
// keep using AddNode/AddEdge, which allocate fresh IDs.

// RestoreNode re-inserts a previously removed node under its original ID.
// The struct is published as-is (structs are immutable once published, so
// passing a snapshot's node is safe). It is an error when the ID is still
// occupied. The restore commits one epoch like any other mutation.
func (g *Graph) RestoreNode(n *Node) error {
	if n == nil {
		return fmt.Errorf("graph %q: RestoreNode: nil node", g.name)
	}
	d := g.beginWrite()
	if _, ok := g.nodes[n.ID]; ok {
		g.abortWrite()
		return fmt.Errorf("graph %q: RestoreNode: node %d already exists", g.name, n.ID)
	}
	// Keep the ID allocator ahead of every published ID so a restore can
	// never collide with a future AddNode.
	for next := g.nextNodeID.Load(); next <= int64(n.ID); next = g.nextNodeID.Load() {
		if g.nextNodeID.CompareAndSwap(next, int64(n.ID)+1) {
			break
		}
	}
	g.insertNodeLocked(n, d)
	g.endWrite(d)
	return nil
}

// RestoreEdge re-inserts a previously removed edge under its original ID.
// Both endpoints must exist (restore nodes before their edges). It is an
// error when the ID is still occupied.
func (g *Graph) RestoreEdge(e *Edge) error {
	if e == nil {
		return fmt.Errorf("graph %q: RestoreEdge: nil edge", g.name)
	}
	d := g.beginWrite()
	if _, ok := g.edges[e.ID]; ok {
		g.abortWrite()
		return fmt.Errorf("graph %q: RestoreEdge: edge %d already exists", g.name, e.ID)
	}
	if _, ok := g.nodes[e.From]; !ok {
		g.abortWrite()
		return fmt.Errorf("graph %q: RestoreEdge: source node %d does not exist", g.name, e.From)
	}
	if _, ok := g.nodes[e.To]; !ok {
		g.abortWrite()
		return fmt.Errorf("graph %q: RestoreEdge: target node %d does not exist", g.name, e.To)
	}
	for next := g.nextEdgeID.Load(); next <= int64(e.ID); next = g.nextEdgeID.Load() {
		if g.nextEdgeID.CompareAndSwap(next, int64(e.ID)+1) {
			break
		}
	}
	g.insertEdgeLocked(e, d)
	g.endWrite(d)
	return nil
}
