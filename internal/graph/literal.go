package graph

import (
	"strconv"
	"strings"
)

// ParseLiteral parses the textual rendering produced by Value.String back
// into a Value: null, true/false, integers, floats, double-quoted strings
// and [comma, separated, lists]. It reports ok=false for anything else.
func ParseLiteral(s string) (Value, bool) {
	s = strings.TrimSpace(s)
	switch s {
	case "":
		return Null, false
	case "null":
		return Null, true
	case "true":
		return NewBool(true), true
	case "false":
		return NewBool(false), true
	}
	if s[0] == '"' {
		unq, err := strconv.Unquote(s)
		if err != nil {
			return Null, false
		}
		return NewString(unq), true
	}
	if s[0] == '[' {
		if !strings.HasSuffix(s, "]") {
			return Null, false
		}
		inner := strings.TrimSpace(s[1 : len(s)-1])
		if inner == "" {
			return NewList(), true
		}
		var elems []Value
		for _, part := range splitTopLevel(inner) {
			v, ok := ParseLiteral(part)
			if !ok {
				return Null, false
			}
			elems = append(elems, v)
		}
		return NewList(elems...), true
	}
	if n, err := strconv.ParseInt(s, 10, 64); err == nil {
		return NewInt(n), true
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return NewFloat(f), true
	}
	return Null, false
}

// splitTopLevel splits on commas not inside quotes or brackets.
func splitTopLevel(s string) []string {
	var parts []string
	depth := 0
	inStr := false
	start := 0
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case inStr:
			if c == '\\' {
				i++
			} else if c == '"' {
				inStr = false
			}
		case c == '"':
			inStr = true
		case c == '[':
			depth++
		case c == ']':
			depth--
		case c == ',' && depth == 0:
			parts = append(parts, strings.TrimSpace(s[start:i]))
			start = i + 1
		}
	}
	parts = append(parts, strings.TrimSpace(s[start:]))
	return parts
}
