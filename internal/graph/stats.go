package graph

import (
	"fmt"
	"sort"
	"strings"
)

// DegreeEntry names one node in a top-degree listing.
type DegreeEntry struct {
	Node   ID
	Labels []string
	Degree int
}

// Stats summarizes a graph's size and connectivity. The hub listings make
// the heavy-tailed structure of real-world graphs visible (and explain
// which incident-encoding blocks outgrow a text window).
type Stats struct {
	Nodes int
	Edges int

	NodeLabelCounts map[string]int
	EdgeTypeCounts  map[string]int

	AvgDegree    float64 // mean total degree (in + out)
	MaxInDegree  int
	MaxOutDegree int
	Isolated     int // nodes with no edges
	SelfLoops    int

	TopByDegree []DegreeEntry // up to 5 highest total-degree nodes
}

// ComputeStats scans the graph once and summarizes it.
func ComputeStats(g *Graph) *Stats {
	s := &Stats{
		NodeLabelCounts: map[string]int{},
		EdgeTypeCounts:  map[string]int{},
	}
	for _, l := range g.NodeLabels() {
		s.NodeLabelCounts[l] = len(g.NodesWithLabel(l))
	}
	for _, t := range g.EdgeTypes() {
		s.EdgeTypeCounts[t] = len(g.EdgesWithType(t))
	}
	s.Nodes = g.NodeCount()
	s.Edges = g.EdgeCount()

	type deg struct {
		id    ID
		total int
	}
	var degrees []deg
	g.ForEachNode(func(n *Node) {
		in, out := g.InDegree(n.ID), g.OutDegree(n.ID)
		if in > s.MaxInDegree {
			s.MaxInDegree = in
		}
		if out > s.MaxOutDegree {
			s.MaxOutDegree = out
		}
		if in+out == 0 {
			s.Isolated++
		}
		degrees = append(degrees, deg{id: n.ID, total: in + out})
	})
	g.ForEachEdge(func(e *Edge) {
		if e.From == e.To {
			s.SelfLoops++
		}
	})
	if s.Nodes > 0 {
		s.AvgDegree = float64(2*s.Edges) / float64(s.Nodes)
	}
	sort.Slice(degrees, func(i, j int) bool {
		if degrees[i].total != degrees[j].total {
			return degrees[i].total > degrees[j].total
		}
		return degrees[i].id < degrees[j].id
	})
	for i := 0; i < len(degrees) && i < 5; i++ {
		n := g.Node(degrees[i].id)
		s.TopByDegree = append(s.TopByDegree, DegreeEntry{
			Node: n.ID, Labels: n.Labels, Degree: degrees[i].total,
		})
	}
	return s
}

// String renders the statistics in a compact human-readable block.
func (s *Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Nodes: %d  Edges: %d  AvgDegree: %.2f\n", s.Nodes, s.Edges, s.AvgDegree)
	fmt.Fprintf(&b, "MaxInDegree: %d  MaxOutDegree: %d  Isolated: %d  SelfLoops: %d\n",
		s.MaxInDegree, s.MaxOutDegree, s.Isolated, s.SelfLoops)
	b.WriteString("Node labels:")
	for _, l := range sortedKeys(s.NodeLabelCounts) {
		fmt.Fprintf(&b, " %s=%d", l, s.NodeLabelCounts[l])
	}
	b.WriteString("\nEdge types:")
	for _, t := range sortedKeys(s.EdgeTypeCounts) {
		fmt.Fprintf(&b, " %s=%d", t, s.EdgeTypeCounts[t])
	}
	b.WriteString("\nTop hubs:")
	for _, e := range s.TopByDegree {
		fmt.Fprintf(&b, " node%d(%s)=%d", e.Node, strings.Join(e.Labels, ","), e.Degree)
	}
	b.WriteString("\n")
	return b.String()
}

func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
