package graph

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// ID identifies a node or an edge within one Graph. Node and edge ID spaces
// are independent.
type ID int64

// Node is a vertex with one or more labels and a property map.
type Node struct {
	ID     ID
	Labels []string
	Props  Props
}

// HasLabel reports whether the node carries the given label.
func (n *Node) HasLabel(label string) bool {
	for _, l := range n.Labels {
		if l == label {
			return true
		}
	}
	return false
}

// Prop returns the value of the named property (null when absent).
func (n *Node) Prop(key string) Value {
	if v, ok := n.Props[key]; ok {
		return v
	}
	return Null
}

// Edge is a directed relationship between two nodes. Edges may carry
// several labels; the first label is the primary relationship type, which
// is what single-type pattern matching (Cypher-style) binds to.
type Edge struct {
	ID     ID
	From   ID
	To     ID
	Labels []string
	Props  Props
}

// Type returns the primary relationship type (first label), or "" for an
// unlabeled edge.
func (e *Edge) Type() string {
	if len(e.Labels) == 0 {
		return ""
	}
	return e.Labels[0]
}

// HasLabel reports whether the edge carries the given label.
func (e *Edge) HasLabel(label string) bool {
	for _, l := range e.Labels {
		if l == label {
			return true
		}
	}
	return false
}

// Prop returns the value of the named property (null when absent).
func (e *Edge) Prop(key string) Value {
	if v, ok := e.Props[key]; ok {
		return v
	}
	return Null
}

// Graph is an in-memory property graph. It is safe for concurrent readers;
// writers must not run concurrently with readers or other writers unless
// they use the locked mutation API (all exported mutators lock).
//
// Writes are organized into epochs (see mvcc.go): every mutation — a single
// exported mutator call or a whole Batch — commits as one epoch, bumping
// the generation counter and invalidating the per-epoch snapshot view.
type Graph struct {
	mu sync.RWMutex

	name string

	nodes map[ID]*Node
	edges map[ID]*Edge

	nextNodeID atomic.Int64
	nextEdgeID atomic.Int64

	// MVCC epoch machinery (mvcc.go). commitMu serializes writers and
	// ordered delta delivery; epoch counts committed write epochs; snap
	// caches the frozen per-epoch snapshot view; frozen marks a snapshot
	// view itself (mutators panic). subs are OnCommit subscribers.
	commitMu sync.Mutex
	epoch    atomic.Uint64
	snap     *Graph
	frozen   bool
	subMu    sync.RWMutex
	subs     map[int]func(*Delta)
	nextSub  int

	// Adjacency: nodeID -> edge IDs.
	out map[ID][]ID
	in  map[ID][]ID

	// Indexes.
	nodesByLabel map[string][]ID
	edgesByType  map[string][]ID

	// Lazily-built read caches (see propindex.go and rangeindex.go).
	// Invalidation is incremental: a node mutation drops the postings of the
	// labels the node carries (plus allPtrs), an edge mutation drops the
	// ordered postings of the edge's types; see invalidateNodeLabelsLocked
	// and invalidateEdgeLabelsLocked in propindex.go.
	propIndex  map[string]map[string][]*Node // label\x00key -> value SortKey -> nodes
	labelPtrs  map[string][]*Node            // label -> nodes, insertion order
	allPtrs    []*Node                       // all nodes, ascending ID
	ordNodeIdx map[string]*ordPosting[*Node] // label\x00key -> sorted posting
	ordEdgeIdx map[string]*ordPosting[*Edge] // type\x00key -> sorted posting

	idxBuilds  atomic.Int64 // equality posting-map constructions (stats)
	idxLookups atomic.Int64 // LabelPropNodes calls (stats)
	ordBuilds  atomic.Int64 // ordered node posting constructions (stats)
	ordEdges   atomic.Int64 // ordered edge posting constructions (stats)
	ordSeeks   atomic.Int64 // range seeks served (stats)
	ordRows    atomic.Int64 // rows returned by range seeks (stats)
}

// New returns an empty graph with the given name.
func New(name string) *Graph {
	return &Graph{
		name:         name,
		nodes:        make(map[ID]*Node),
		edges:        make(map[ID]*Edge),
		out:          make(map[ID][]ID),
		in:           make(map[ID][]ID),
		nodesByLabel: make(map[string][]ID),
		edgesByType:  make(map[string][]ID),
	}
}

// Name returns the graph's name.
func (g *Graph) Name() string { return g.name }

// AddNode inserts a node with the given labels and properties and returns
// it. Labels are stored in the given order; duplicates are removed.
func (g *Graph) AddNode(labels []string, props Props) *Node {
	d := g.beginWrite()
	n := g.newNode(labels, props)
	g.insertNodeLocked(n, d)
	g.endWrite(d)
	return n
}

// newNode builds a node struct with a freshly reserved ID; it does not
// publish it. ID reservation is atomic so batches can allocate without the
// graph lock.
func (g *Graph) newNode(labels []string, props Props) *Node {
	id := ID(g.nextNodeID.Add(1) - 1)
	n := &Node{ID: id, Labels: dedupe(labels), Props: props.Clone()}
	if n.Props == nil {
		n.Props = Props{}
	}
	return n
}

// insertNodeLocked publishes a prebuilt node and records it in d (nil ok).
func (g *Graph) insertNodeLocked(n *Node, d *Delta) {
	g.invalidateNodeLabelsLocked(n.Labels)
	g.nodes[n.ID] = n
	for _, l := range n.Labels {
		g.nodesByLabel[l] = append(g.nodesByLabel[l], n.ID)
	}
	if d != nil {
		d.noteNode(n.Labels, true, propKeys(n.Props)...)
		d.Nodes = append(d.Nodes, n.ID)
		d.Ops = append(d.Ops, Op{Kind: OpAddNode, Node: n})
	}
}

// AddEdge inserts a directed edge from -> to with the given labels and
// properties. It returns an error when either endpoint does not exist or
// no label is provided.
func (g *Graph) AddEdge(from, to ID, labels []string, props Props) (*Edge, error) {
	labels = dedupe(labels)
	if len(labels) == 0 {
		return nil, fmt.Errorf("graph %q: AddEdge: edge requires at least one label", g.name)
	}
	d := g.beginWrite()
	if _, ok := g.nodes[from]; !ok {
		g.abortWrite()
		return nil, fmt.Errorf("graph %q: AddEdge: source node %d does not exist", g.name, from)
	}
	if _, ok := g.nodes[to]; !ok {
		g.abortWrite()
		return nil, fmt.Errorf("graph %q: AddEdge: target node %d does not exist", g.name, to)
	}
	e := g.newEdge(from, to, labels, props)
	g.insertEdgeLocked(e, d)
	g.endWrite(d)
	return e, nil
}

// newEdge builds an edge struct with a freshly reserved ID; labels must
// already be deduped and non-empty. It does not publish the edge.
func (g *Graph) newEdge(from, to ID, labels []string, props Props) *Edge {
	id := ID(g.nextEdgeID.Add(1) - 1)
	e := &Edge{ID: id, From: from, To: to, Labels: labels, Props: props.Clone()}
	if e.Props == nil {
		e.Props = Props{}
	}
	return e
}

// insertEdgeLocked publishes a prebuilt edge and records it in d (nil ok).
// Endpoints must exist.
func (g *Graph) insertEdgeLocked(e *Edge, d *Delta) {
	g.invalidateEdgeLabelsLocked(e.Labels)
	g.edges[e.ID] = e
	g.out[e.From] = append(g.out[e.From], e.ID)
	g.in[e.To] = append(g.in[e.To], e.ID)
	for _, l := range e.Labels {
		g.edgesByType[l] = append(g.edgesByType[l], e.ID)
	}
	if d != nil {
		d.noteEdge(e.Labels, true, propKeys(e.Props)...)
		d.Edges = append(d.Edges, e.ID)
		d.Ops = append(d.Ops, Op{Kind: OpAddEdge, Edge: e})
	}
}

// MustAddEdge is AddEdge that panics on error; intended for generators and
// tests where endpoints are known valid.
func (g *Graph) MustAddEdge(from, to ID, labels []string, props Props) *Edge {
	e, err := g.AddEdge(from, to, labels, props)
	if err != nil {
		panic(err)
	}
	return e
}

// Node returns the node with the given ID, or nil.
func (g *Graph) Node(id ID) *Node {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.nodes[id]
}

// Edge returns the edge with the given ID, or nil.
func (g *Graph) Edge(id ID) *Edge {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.edges[id]
}

// NodeCount returns the number of nodes.
func (g *Graph) NodeCount() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.nodes)
}

// EdgeCount returns the number of edges.
func (g *Graph) EdgeCount() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.edges)
}

// Nodes returns all node IDs in ascending order.
func (g *Graph) Nodes() []ID {
	g.mu.RLock()
	defer g.mu.RUnlock()
	ids := make([]ID, 0, len(g.nodes))
	for id := range g.nodes {
		ids = append(ids, id)
	}
	sortIDs(ids)
	return ids
}

// Edges returns all edge IDs in ascending order.
func (g *Graph) Edges() []ID {
	g.mu.RLock()
	defer g.mu.RUnlock()
	ids := make([]ID, 0, len(g.edges))
	for id := range g.edges {
		ids = append(ids, id)
	}
	sortIDs(ids)
	return ids
}

// NodesWithLabel returns the IDs of all nodes carrying the label, in
// insertion order.
func (g *Graph) NodesWithLabel(label string) []ID {
	g.mu.RLock()
	defer g.mu.RUnlock()
	ids := g.nodesByLabel[label]
	out := make([]ID, len(ids))
	copy(out, ids)
	return out
}

// EdgesWithType returns the IDs of all edges carrying the label, in
// insertion order.
func (g *Graph) EdgesWithType(label string) []ID {
	g.mu.RLock()
	defer g.mu.RUnlock()
	ids := g.edgesByType[label]
	out := make([]ID, len(ids))
	copy(out, ids)
	return out
}

// OutEdges returns the IDs of edges leaving the node.
func (g *Graph) OutEdges(node ID) []ID {
	g.mu.RLock()
	defer g.mu.RUnlock()
	ids := g.out[node]
	out := make([]ID, len(ids))
	copy(out, ids)
	return out
}

// InEdges returns the IDs of edges entering the node.
func (g *Graph) InEdges(node ID) []ID {
	g.mu.RLock()
	defer g.mu.RUnlock()
	ids := g.in[node]
	out := make([]ID, len(ids))
	copy(out, ids)
	return out
}

// OutDegree returns the number of edges leaving the node.
func (g *Graph) OutDegree(node ID) int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.out[node])
}

// InDegree returns the number of edges entering the node.
func (g *Graph) InDegree(node ID) int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.in[node])
}

// SetNodeProp sets (or with a null value, deletes) one property of a node.
//
// The update is copy-on-write: a fresh Node with the updated property map is
// swapped into the graph and the published struct is never mutated. Readers
// holding the old pointer (cache snapshots taken before the write) keep
// seeing a consistent pre-write view; readers that re-fetch — or scan a
// cache rebuilt after the invalidation below — see the new version. Callers
// that need read-your-writes must therefore re-fetch the node by ID.
func (g *Graph) SetNodeProp(id ID, key string, v Value) error {
	d := g.beginWrite()
	if err := g.setNodePropLocked(id, key, v, d); err != nil {
		g.abortWrite()
		return err
	}
	g.endWrite(d)
	return nil
}

func (g *Graph) setNodePropLocked(id ID, key string, v Value, d *Delta) error {
	n, ok := g.nodes[id]
	if !ok {
		return fmt.Errorf("graph %q: SetNodeProp: node %d does not exist", g.name, id)
	}
	g.invalidateNodeLabelsLocked(n.Labels)
	props := n.Props.Clone()
	if v.IsNull() {
		delete(props, key)
	} else {
		props[key] = v
	}
	g.nodes[id] = &Node{ID: n.ID, Labels: n.Labels, Props: props}
	if d != nil {
		d.noteNode(n.Labels, false, key)
		d.Nodes = append(d.Nodes, id)
		d.Ops = append(d.Ops, Op{Kind: OpSetNodeProp, ID: id, Key: key, Value: v})
	}
	return nil
}

// SetEdgeProp sets (or with a null value, deletes) one property of an edge.
// Copy-on-write like SetNodeProp: the published Edge struct is never
// mutated, a fresh one is swapped in.
func (g *Graph) SetEdgeProp(id ID, key string, v Value) error {
	d := g.beginWrite()
	if err := g.setEdgePropLocked(id, key, v, d); err != nil {
		g.abortWrite()
		return err
	}
	g.endWrite(d)
	return nil
}

func (g *Graph) setEdgePropLocked(id ID, key string, v Value, d *Delta) error {
	e, ok := g.edges[id]
	if !ok {
		return fmt.Errorf("graph %q: SetEdgeProp: edge %d does not exist", g.name, id)
	}
	g.invalidateEdgeLabelsLocked(e.Labels)
	props := e.Props.Clone()
	if v.IsNull() {
		delete(props, key)
	} else {
		props[key] = v
	}
	g.edges[id] = &Edge{ID: e.ID, From: e.From, To: e.To, Labels: e.Labels, Props: props}
	if d != nil {
		d.noteEdge(e.Labels, false, key)
		d.Edges = append(d.Edges, id)
		d.Ops = append(d.Ops, Op{Kind: OpSetEdgeProp, ID: id, Key: key, Value: v})
	}
	return nil
}

// AddNodeLabels adds labels to an existing node, updating the label index.
// Labels already present are ignored. Copy-on-write like SetNodeProp: the
// label slice of the published struct is never appended to in place.
func (g *Graph) AddNodeLabels(id ID, labels ...string) error {
	d := g.beginWrite()
	if err := g.addNodeLabelsLocked(id, labels, d); err != nil {
		g.abortWrite()
		return err
	}
	g.endWrite(d)
	return nil
}

func (g *Graph) addNodeLabelsLocked(id ID, labels []string, d *Delta) error {
	n, ok := g.nodes[id]
	if !ok {
		return fmt.Errorf("graph %q: AddNodeLabels: node %d does not exist", g.name, id)
	}
	nl := append(make([]string, 0, len(n.Labels)+len(labels)), n.Labels...)
	added := false
	for _, l := range labels {
		if l == "" || hasString(nl, l) {
			continue
		}
		nl = append(nl, l)
		g.nodesByLabel[l] = append(g.nodesByLabel[l], id)
		added = true
	}
	if added {
		// Invalidate under every label the node now carries: postings for
		// the old labels hold the superseded struct, and the new labels'
		// postings (if built) are missing the node entirely.
		g.invalidateNodeLabelsLocked(nl)
		// The property map is shared with the old version; safe because no
		// mutator writes a published Props map in place.
		g.nodes[id] = &Node{ID: n.ID, Labels: nl, Props: n.Props}
	}
	if d != nil && added {
		// Membership changed under both the old and the new labels.
		d.noteNode(nl, true)
		d.Nodes = append(d.Nodes, id)
		d.Ops = append(d.Ops, Op{Kind: OpAddLabels, ID: id, Labels: labels})
	}
	return nil
}

func hasString(ss []string, s string) bool {
	for _, x := range ss {
		if x == s {
			return true
		}
	}
	return false
}

// RemoveEdge deletes an edge. Removing a missing edge is a no-op.
func (g *Graph) RemoveEdge(id ID) {
	d := g.beginWrite()
	if _, ok := g.edges[id]; !ok {
		g.abortWrite()
		return
	}
	g.removeEdgeLocked(id, d)
	g.endWrite(d)
}

func (g *Graph) removeEdgeLocked(id ID, d *Delta) {
	e, ok := g.edges[id]
	if !ok {
		return
	}
	g.invalidateEdgeLabelsLocked(e.Labels)
	delete(g.edges, id)
	g.out[e.From] = removeID(g.out[e.From], id)
	g.in[e.To] = removeID(g.in[e.To], id)
	for _, l := range e.Labels {
		g.edgesByType[l] = removeID(g.edgesByType[l], id)
	}
	if d != nil {
		d.noteEdge(e.Labels, true)
		d.Edges = append(d.Edges, id)
		d.Ops = append(d.Ops, Op{Kind: OpRemoveEdge, ID: id, Edge: e})
	}
}

// RemoveNode deletes a node together with all incident edges. Removing a
// missing node is a no-op.
func (g *Graph) RemoveNode(id ID) {
	d := g.beginWrite()
	if _, ok := g.nodes[id]; !ok {
		g.abortWrite()
		return
	}
	g.removeNodeLocked(id, d)
	g.endWrite(d)
}

func (g *Graph) removeNodeLocked(id ID, d *Delta) {
	n, ok := g.nodes[id]
	if !ok {
		return
	}
	g.invalidateNodeLabelsLocked(n.Labels)
	for _, eid := range append(append([]ID(nil), g.out[id]...), g.in[id]...) {
		g.removeEdgeLocked(eid, d)
	}
	delete(g.out, id)
	delete(g.in, id)
	delete(g.nodes, id)
	for _, l := range n.Labels {
		g.nodesByLabel[l] = removeID(g.nodesByLabel[l], id)
	}
	if d != nil {
		d.noteNode(n.Labels, true)
		d.Nodes = append(d.Nodes, id)
		d.Ops = append(d.Ops, Op{Kind: OpRemoveNode, ID: id, Node: n})
	}
}

// NodeLabels returns the sorted set of node labels present in the graph.
func (g *Graph) NodeLabels() []string {
	g.mu.RLock()
	defer g.mu.RUnlock()
	out := make([]string, 0, len(g.nodesByLabel))
	for l, ids := range g.nodesByLabel {
		if len(ids) > 0 {
			out = append(out, l)
		}
	}
	sort.Strings(out)
	return out
}

// EdgeTypes returns the sorted set of edge labels present in the graph.
func (g *Graph) EdgeTypes() []string {
	g.mu.RLock()
	defer g.mu.RUnlock()
	out := make([]string, 0, len(g.edgesByType))
	for l, ids := range g.edgesByType {
		if len(ids) > 0 {
			out = append(out, l)
		}
	}
	sort.Strings(out)
	return out
}

// ForEachNode calls fn for every node in ascending ID order. The node set
// is snapshotted under a single read lock, so a writer interleaving with
// the iteration can never expose a torn view (a node present in the ID
// list but already deleted from the map). fn must not mutate the graph.
func (g *Graph) ForEachNode(fn func(*Node)) {
	for _, n := range g.AllNodes() {
		fn(n)
	}
}

// ForEachEdge calls fn for every edge in ascending ID order. Like
// ForEachNode, the edge set is snapshotted under one read lock. fn must
// not mutate the graph.
func (g *Graph) ForEachEdge(fn func(*Edge)) {
	g.mu.RLock()
	es := make([]*Edge, 0, len(g.edges))
	for _, e := range g.edges {
		es = append(es, e)
	}
	g.mu.RUnlock()
	sort.Slice(es, func(i, j int) bool { return es[i].ID < es[j].ID })
	for _, e := range es {
		fn(e)
	}
}

func dedupe(labels []string) []string {
	seen := make(map[string]bool, len(labels))
	out := make([]string, 0, len(labels))
	for _, l := range labels {
		if l == "" || seen[l] {
			continue
		}
		seen[l] = true
		out = append(out, l)
	}
	return out
}

// removeID deletes id from an ID list, preserving order. The removal is
// copy-on-write: the published slice is never written in place, so epoch
// snapshot views (which share slice headers with the live graph) keep
// seeing their frozen contents. Appends remain safe to share because a
// snapshot's header length never grows.
func removeID(ids []ID, id ID) []ID {
	for i, x := range ids {
		if x == id {
			out := make([]ID, 0, len(ids)-1)
			out = append(out, ids[:i]...)
			return append(out, ids[i+1:]...)
		}
	}
	return ids
}

// propKeys returns the keys of a property map in unspecified order.
func propKeys(p Props) []string {
	if len(p) == 0 {
		return nil
	}
	out := make([]string, 0, len(p))
	for k := range p {
		out = append(out, k)
	}
	return out
}

func sortIDs(ids []ID) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}
