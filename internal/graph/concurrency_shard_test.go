// Sharded-executor race coverage. This file is an external test package
// (graph_test) because it drives internal/cypher, which imports graph —
// an in-package test would create an import cycle.
package graph_test

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/graphrules/graphrules/internal/cypher"
	"github.com/graphrules/graphrules/internal/graph"
)

// TestShardedExecuteUnderMutation runs concurrent sharded Execute calls
// against concurrent node/edge mutations. The writers hit SetNodeProp on an
// indexed property, so the lazily built property index is invalidated and
// rebuilt while shard workers are scanning. Under -race this pins the
// copy-on-write mutation contract: shard workers hold node/edge snapshots
// and must never observe a struct being written in place.
func TestShardedExecuteUnderMutation(t *testing.T) {
	g := graph.New("shard-race")
	var ids []graph.ID
	for i := 0; i < 300; i++ {
		n := g.AddNode([]string{"Person"}, graph.Props{"idx": graph.NewInt(int64(i)), "bucket": graph.NewInt(int64(i % 7))})
		ids = append(ids, n.ID)
		if i > 0 {
			g.MustAddEdge(ids[i-1], ids[i], []string{"NEXT"}, graph.Props{"w": graph.NewInt(int64(i))})
		}
	}

	queries := []string{
		// Property-index anchor: forces a pushdown seek against the index
		// the writers keep invalidating.
		`MATCH (p:Person) WHERE p.bucket = 3 RETURN count(*) AS n`,
		// Label-scan anchor with per-shard WHERE re-filtering.
		`MATCH (p:Person) WHERE p.idx > 150 RETURN p.idx`,
		// Relationship expansion from shard-local anchors.
		`MATCH (a:Person)-[r:NEXT]->(b:Person) RETURN count(*) AS n`,
		// Aggregate fast path with property access on both endpoints.
		`MATCH (a:Person)-[:NEXT]->(b) RETURN min(a.idx) AS lo, max(b.idx) AS hi`,
	}

	var (
		writers, readers sync.WaitGroup
		stop             atomic.Bool
	)

	// Writers: property writes (index invalidation), label additions, and
	// fresh nodes/edges appearing mid-scan. They run until the readers
	// have finished, so every sharded Run overlaps live mutation; Gosched
	// keeps them from starving readers on a single-CPU machine (every
	// write invalidates the caches readers then rebuild).
	for w := 0; w < 2; w++ {
		w := w
		writers.Add(1)
		go func() {
			defer writers.Done()
			for i := 0; !stop.Load(); i++ {
				runtime.Gosched()
				id := ids[(i*7+w)%len(ids)]
				if err := g.SetNodeProp(id, "bucket", graph.NewInt(int64(i%7))); err != nil {
					t.Error(err)
					return
				}
				if i%10 == 0 {
					n := g.AddNode([]string{"Person"}, graph.Props{"idx": graph.NewInt(int64(1000 + i)), "bucket": graph.NewInt(int64(i % 7))})
					g.MustAddEdge(ids[i%len(ids)], n.ID, []string{"NEXT"}, nil)
				}
				if i%17 == 0 {
					if err := g.AddNodeLabels(id, "Touched"); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}()
	}

	// Readers: one executor per goroutine (the supported concurrent-read
	// pattern), each running sharded queries in a loop.
	for r := 0; r < 3; r++ {
		r := r
		readers.Add(1)
		go func() {
			defer readers.Done()
			ex := cypher.NewExecutor(g)
			ex.SetShardWorkers(4)
			for i := 0; i < 12; i++ {
				q := queries[(i+r)%len(queries)]
				if _, err := ex.Run(q, nil); err != nil {
					t.Errorf("reader %d: Run(%q): %v", r, q, err)
					return
				}
			}
		}()
	}

	readers.Wait()
	stop.Store(true)
	writers.Wait()
}
