package graph

import (
	"sync"
	"testing"
)

// TestForEachSnapshotUnderMutation runs ForEachNode/ForEachEdge while a
// writer mutates the graph. Under -race this pins the single-RLock snapshot
// contract: iteration must never observe torn state or race with writers.
func TestForEachSnapshotUnderMutation(t *testing.T) {
	g := New("race")
	var ids []ID
	for i := 0; i < 50; i++ {
		n := g.AddNode([]string{"N"}, Props{"i": NewInt(int64(i))})
		ids = append(ids, n.ID)
		if i > 0 {
			g.MustAddEdge(ids[i-1], ids[i], []string{"E"}, nil)
		}
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			id := ids[i%len(ids)]
			_ = g.SetNodeProp(id, "touched", NewInt(int64(i)))
			g.AddNode([]string{"Extra"}, nil)
		}
	}()

	for iter := 0; iter < 200; iter++ {
		count := 0
		g.ForEachNode(func(n *Node) {
			if n == nil {
				t.Error("nil node during iteration")
			}
			count++
		})
		if count < 50 {
			t.Fatalf("iteration saw %d nodes, want >= 50", count)
		}
		edges := 0
		g.ForEachEdge(func(e *Edge) {
			if e == nil {
				t.Error("nil edge during iteration")
			}
			edges++
		})
		if edges != 49 {
			t.Fatalf("iteration saw %d edges, want 49", edges)
		}
	}
	close(stop)
	wg.Wait()
}

func TestRemoveIDCopiesOnWrite(t *testing.T) {
	backing := []ID{1, 2, 3, 4}
	got := removeID(backing, 2)
	if len(got) != 3 || got[0] != 1 || got[1] != 3 || got[2] != 4 {
		t.Fatalf("removeID order: %v", got)
	}
	// The published slice must be untouched: epoch snapshot views share
	// slice headers with the live graph, so in-place removal would tear
	// a pinned reader's view.
	for i, want := range []ID{1, 2, 3, 4} {
		if backing[i] != want {
			t.Errorf("removeID mutated backing[%d] = %d, want %d", i, backing[i], want)
		}
	}

	// Removing an absent ID is a no-op.
	if got := removeID([]ID{1, 2}, 9); len(got) != 2 {
		t.Errorf("removeID absent: %v", got)
	}
}

// TestLabelOrderPreservedAfterRemoval pins the documented insertion-order
// contract of the label index across removals.
func TestLabelOrderPreservedAfterRemoval(t *testing.T) {
	g := New("order")
	a := g.AddNode([]string{"N"}, nil)
	b := g.AddNode([]string{"N"}, nil)
	c := g.AddNode([]string{"N"}, nil)
	d := g.AddNode([]string{"N"}, nil)
	g.RemoveNode(b.ID)
	got := g.NodesWithLabel("N")
	want := []ID{a.ID, c.ID, d.ID}
	if len(got) != len(want) {
		t.Fatalf("labels after removal: %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("label order after removal: got %v want %v", got, want)
		}
	}
}

func TestLabelPropNodesIndex(t *testing.T) {
	g := New("idx")
	a := g.AddNode([]string{"P"}, Props{"city": NewString("Lyon"), "n": NewInt(7)})
	g.AddNode([]string{"P"}, Props{"city": NewString("Nice")})
	g.AddNode([]string{"P"}, Props{"n": NewFloat(7.0)})
	g.AddNode([]string{"Q"}, Props{"city": NewString("Lyon")})

	ns := g.LabelPropNodes("P", "city", NewString("Lyon"))
	if len(ns) != 1 || ns[0].ID != a.ID {
		t.Fatalf("LabelPropNodes(city=Lyon) = %v", ns)
	}
	// Cross-numeric: int 7 and float 7.0 share a sort key, as Equal demands.
	if ns := g.LabelPropNodes("P", "n", NewFloat(7.0)); len(ns) != 2 {
		t.Fatalf("LabelPropNodes(n=7.0) = %d nodes, want 2", len(ns))
	}
	if ns := g.LabelPropNodes("P", "n", NewInt(7)); len(ns) != 2 {
		t.Fatalf("LabelPropNodes(n=7) = %d nodes, want 2", len(ns))
	}
	// Null never matches, even stored nulls.
	if ns := g.LabelPropNodes("P", "city", Null); ns != nil {
		t.Fatalf("LabelPropNodes(null) = %v, want nil", ns)
	}
	builds, lookups, live := g.PropIndexStats()
	if builds == 0 || lookups == 0 || live == 0 {
		t.Errorf("PropIndexStats = %d, %d, %d", builds, lookups, live)
	}

	// Node mutation invalidates; edge mutation must not.
	g.MustAddEdge(a.ID, a.ID, []string{"E"}, nil)
	if _, _, live := g.PropIndexStats(); live == 0 {
		t.Error("edge mutation dropped the node prop index")
	}
	if err := g.SetNodeProp(a.ID, "city", NewString("Paris")); err != nil {
		t.Fatal(err)
	}
	if _, _, live := g.PropIndexStats(); live != 0 {
		t.Error("node mutation did not invalidate the prop index")
	}
	if ns := g.LabelPropNodes("P", "city", NewString("Paris")); len(ns) != 1 {
		t.Fatalf("after rebuild: %v", ns)
	}
}

func TestBulkPointerAccessors(t *testing.T) {
	g := New("bulk")
	a := g.AddNode([]string{"N"}, nil)
	b := g.AddNode([]string{"N"}, nil)
	e := g.MustAddEdge(a.ID, b.ID, []string{"E"}, nil)

	all := g.AllNodes()
	if len(all) != 2 || all[0].ID != a.ID || all[1].ID != b.ID {
		t.Fatalf("AllNodes = %v", all)
	}
	if ns := g.LabelNodes("N"); len(ns) != 2 || ns[0].ID != a.ID {
		t.Fatalf("LabelNodes = %v", ns)
	}
	if es := g.OutEdgePtrs(a.ID); len(es) != 1 || es[0].ID != e.ID {
		t.Fatalf("OutEdgePtrs = %v", es)
	}
	if es := g.InEdgePtrs(b.ID); len(es) != 1 || es[0].ID != e.ID {
		t.Fatalf("InEdgePtrs = %v", es)
	}

	// Cached snapshots must not leak later additions.
	c := g.AddNode([]string{"N"}, nil)
	if len(all) != 2 {
		t.Fatal("snapshot mutated by AddNode")
	}
	if ns := g.AllNodes(); len(ns) != 3 || ns[2].ID != c.ID {
		t.Fatalf("AllNodes after add = %v", ns)
	}
}
