package graph

import (
	"strings"
	"testing"
)

func schemaFixture() *Graph {
	g := New("sf")
	u1 := g.AddNode([]string{"User"}, Props{"id": NewInt(1), "name": NewString("a")})
	u2 := g.AddNode([]string{"User"}, Props{"id": NewInt(2)})
	t1 := g.AddNode([]string{"Tweet"}, Props{"id": NewInt(10), "text": NewString("x")})
	t2 := g.AddNode([]string{"Tweet"}, Props{"id": NewInt(11), "text": NewString("y")})
	g.MustAddEdge(u1.ID, t1.ID, []string{"POSTS"}, Props{"at": NewInt(5)})
	g.MustAddEdge(u2.ID, t2.ID, []string{"POSTS"}, nil)
	g.MustAddEdge(u1.ID, u2.ID, []string{"FOLLOWS"}, nil)
	return g
}

func TestExtractSchemaCounts(t *testing.T) {
	s := ExtractSchema(schemaFixture())
	if s.NodeTotal != 4 || s.EdgeTotal != 3 {
		t.Fatalf("totals = %d/%d", s.NodeTotal, s.EdgeTotal)
	}
	u := s.NodeLabels["User"]
	if u == nil || u.Count != 2 {
		t.Fatalf("User schema = %+v", u)
	}
	if u.Props["id"].Count != 2 || u.Props["name"].Count != 1 {
		t.Errorf("User prop counts wrong: %+v", u.Props)
	}
	if u.Props["id"].DominantKind() != KindInt {
		t.Error("id dominant kind should be int")
	}
	if u.Props["id"].Distinct != 2 {
		t.Errorf("id Distinct = %d", u.Props["id"].Distinct)
	}
	p := s.EdgeLabels["POSTS"]
	if p == nil || p.Count != 2 {
		t.Fatalf("POSTS schema = %+v", p)
	}
	from, to := p.DominantEndpoints()
	if from != "User" || to != "Tweet" {
		t.Errorf("POSTS endpoints = %s->%s", from, to)
	}
	if p.Props["at"].Count != 1 {
		t.Error("edge prop count wrong")
	}
}

func TestSchemaNames(t *testing.T) {
	s := ExtractSchema(schemaFixture())
	if got := s.NodeLabelNames(); len(got) != 2 || got[0] != "Tweet" || got[1] != "User" {
		t.Errorf("NodeLabelNames = %v", got)
	}
	if got := s.EdgeLabelNames(); len(got) != 2 || got[0] != "FOLLOWS" {
		t.Errorf("EdgeLabelNames = %v", got)
	}
	if !s.HasNodeProp("User", "id") || s.HasNodeProp("User", "nope") || s.HasNodeProp("Ghost", "id") {
		t.Error("HasNodeProp wrong")
	}
	if !s.HasEdgeProp("POSTS", "at") || s.HasEdgeProp("POSTS", "nope") || s.HasEdgeProp("Ghost", "x") {
		t.Error("HasEdgeProp wrong")
	}
}

func TestSchemaDescribe(t *testing.T) {
	s := ExtractSchema(schemaFixture())
	d := s.Describe()
	for _, want := range []string{
		"4 nodes, 3 edges",
		"User (2 nodes)",
		"(:User)-[:POSTS]->(:Tweet)",
		"id:int",
		"text:string",
	} {
		if !strings.Contains(d, want) {
			t.Errorf("Describe missing %q in:\n%s", want, d)
		}
	}
}

func TestSchemaEmptyGraph(t *testing.T) {
	s := ExtractSchema(New("empty"))
	if s.NodeTotal != 0 || s.EdgeTotal != 0 {
		t.Error("empty totals")
	}
	if len(s.NodeLabelNames()) != 0 || len(s.EdgeLabelNames()) != 0 {
		t.Error("empty names")
	}
	var es EdgeSchema
	if f, to := es.DominantEndpoints(); f != "" || to != "" {
		t.Error("empty endpoints")
	}
	if !strings.Contains(s.Describe(), "0 nodes, 0 edges") {
		t.Error("empty describe")
	}
}

func TestSchemaSamplesCapped(t *testing.T) {
	g := New("caps")
	for i := 0; i < 10; i++ {
		g.AddNode([]string{"N"}, Props{"k": NewInt(int64(i))})
	}
	s := ExtractSchema(g)
	ps := s.NodeLabels["N"].Props["k"]
	if len(ps.Samples) != maxSamples {
		t.Errorf("Samples = %v, want %d entries", ps.Samples, maxSamples)
	}
	if ps.Distinct != 10 {
		t.Errorf("Distinct = %d", ps.Distinct)
	}
}
