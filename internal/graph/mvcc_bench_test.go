package graph

// MVCC write-path benchmarks (results recorded in BENCH_mvcc.json).
//
// BenchmarkMVCCWrite measures sustained mutation throughput: each
// iteration is one committed epoch (add a node, set a property, remove the
// node). The concurrent variants run snapshot readers the whole time, so
// the numbers show what epoch publication costs when every commit
// invalidates a pinned-view cache that readers keep rebuilding — the
// clone-and-swap design this replaced paid a full graph copy per mutation
// instead.

import (
	"fmt"
	"sync"
	"testing"
)

func benchBaseGraph(n int) *Graph {
	g := New("bench")
	for i := 0; i < n; i++ {
		g.AddNode([]string{"B"}, Props{"i": NewInt(int64(i))})
	}
	return g
}

func BenchmarkMVCCWrite(b *testing.B) {
	for _, readers := range []int{0, 2, 8} {
		b.Run(fmt.Sprintf("readers=%d", readers), func(b *testing.B) {
			g := benchBaseGraph(10000)
			stop := make(chan struct{})
			var wg sync.WaitGroup
			for r := 0; r < readers; r++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						select {
						case <-stop:
							return
						default:
						}
						// A pinned scan: snapshot, then walk the label bucket.
						s := g.Snapshot()
						n := 0
						for range s.NodesWithLabel("B") {
							n++
						}
						_ = n
					}
				}()
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				nd := g.AddNode([]string{"B"}, Props{"i": NewInt(int64(i))})
				if err := g.SetNodeProp(nd.ID, "j", NewInt(int64(i))); err != nil {
					b.Fatal(err)
				}
				g.RemoveNode(nd.ID)
			}
			b.StopTimer()
			close(stop)
			wg.Wait()
			b.ReportMetric(float64(b.N*3), "mutations")
		})
	}
}

// BenchmarkMVCCBatchWrite amortizes epoch publication over batch size: one
// commit (one lock acquisition, one epoch, one delta) per K mutations.
func BenchmarkMVCCBatchWrite(b *testing.B) {
	for _, size := range []int{1, 16, 256} {
		b.Run(fmt.Sprintf("batch=%d", size), func(b *testing.B) {
			g := benchBaseGraph(10000)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				bt := g.NewBatch()
				ids := make([]ID, size)
				for k := 0; k < size; k++ {
					ids[k] = bt.AddNode([]string{"B"}, Props{"i": NewInt(int64(k))}).ID
				}
				if _, err := bt.Commit(); err != nil {
					b.Fatal(err)
				}
				rb := g.NewBatch()
				for _, id := range ids {
					rb.RemoveNode(id)
				}
				if _, err := rb.Commit(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSnapshot prices the snapshot itself: first call after an epoch
// pays the shallow map copies, subsequent calls hit the per-epoch cache.
func BenchmarkSnapshot(b *testing.B) {
	for _, mode := range []string{"cold", "cached"} {
		b.Run(mode, func(b *testing.B) {
			g := benchBaseGraph(10000)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if mode == "cold" {
					b.StopTimer()
					// Invalidate the cache with a real epoch.
					nd := g.AddNode([]string{"Tmp"}, nil)
					g.RemoveNode(nd.ID)
					b.StartTimer()
				}
				if s := g.Snapshot(); s == nil {
					b.Fatal("nil snapshot")
				}
			}
		})
	}
}
