package graph

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestValueConstructorsAndAccessors(t *testing.T) {
	cases := []struct {
		v    Value
		kind Kind
		str  string
	}{
		{Null, KindNull, "null"},
		{NewBool(true), KindBool, "true"},
		{NewBool(false), KindBool, "false"},
		{NewInt(42), KindInt, "42"},
		{NewInt(-7), KindInt, "-7"},
		{NewFloat(2.5), KindFloat, "2.5"},
		{NewString("hi"), KindString, `"hi"`},
		{NewList(NewInt(1), NewString("a")), KindList, `[1, "a"]`},
	}
	for _, c := range cases {
		if c.v.Kind() != c.kind {
			t.Errorf("%v: kind = %v, want %v", c.v, c.v.Kind(), c.kind)
		}
		if got := c.v.String(); got != c.str {
			t.Errorf("String() = %q, want %q", got, c.str)
		}
	}
}

func TestOfConversions(t *testing.T) {
	if Of(nil).Kind() != KindNull {
		t.Error("Of(nil) should be null")
	}
	if Of(3).Int() != 3 {
		t.Error("Of(int)")
	}
	if Of(int64(9)).Int() != 9 {
		t.Error("Of(int64)")
	}
	if Of(uint32(5)).Int() != 5 {
		t.Error("Of(uint32)")
	}
	if Of(1.5).Float() != 1.5 {
		t.Error("Of(float64)")
	}
	if Of("x").Str() != "x" {
		t.Error("Of(string)")
	}
	if !Of(true).Equal(NewBool(true)) {
		t.Error("Of(bool)")
	}
	l := Of([]string{"a", "b"})
	if l.Kind() != KindList || len(l.List()) != 2 || l.List()[1].Str() != "b" {
		t.Errorf("Of([]string) = %v", l)
	}
	li := Of([]int{1, 2, 3})
	if li.Kind() != KindList || li.List()[2].Int() != 3 {
		t.Errorf("Of([]int) = %v", li)
	}
	la := Of([]any{1, "x", true})
	if la.Kind() != KindList || !la.List()[2].Bool() {
		t.Errorf("Of([]any) = %v", la)
	}
	if Of(struct{}{}).Kind() != KindNull {
		t.Error("Of(unsupported) should be null")
	}
	v := NewInt(1)
	if !Of(v).Equal(v) || Of(v).Kind() != KindInt {
		t.Error("Of(Value) should be identity")
	}
}

func TestValueEqual(t *testing.T) {
	cases := []struct {
		a, b Value
		want bool
	}{
		{NewInt(1), NewInt(1), true},
		{NewInt(1), NewInt(2), false},
		{NewInt(1), NewFloat(1.0), true},
		{NewFloat(2.5), NewFloat(2.5), true},
		{NewString("a"), NewString("a"), true},
		{NewString("a"), NewString("b"), false},
		{NewString("1"), NewInt(1), false},
		{NewBool(true), NewBool(true), true},
		{NewBool(true), NewInt(1), false},
		{Null, Null, false},
		{Null, NewInt(0), false},
		{NewList(NewInt(1)), NewList(NewInt(1)), true},
		{NewList(NewInt(1)), NewList(NewInt(2)), false},
		{NewList(NewInt(1)), NewList(NewInt(1), NewInt(2)), false},
		{NewList(Null), NewList(Null), true},
	}
	for _, c := range cases {
		if got := c.a.Equal(c.b); got != c.want {
			t.Errorf("%v.Equal(%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestValueCompare(t *testing.T) {
	lt := func(a, b Value) {
		t.Helper()
		if c, ok := a.Compare(b); !ok || c >= 0 {
			t.Errorf("want %v < %v (got c=%d ok=%v)", a, b, c, ok)
		}
		if c, ok := b.Compare(a); !ok || c <= 0 {
			t.Errorf("want %v > %v", b, a)
		}
	}
	lt(NewInt(1), NewInt(2))
	lt(NewInt(1), NewFloat(1.5))
	lt(NewFloat(-3), NewInt(0))
	lt(NewString("abc"), NewString("abd"))
	lt(NewBool(false), NewBool(true))

	if _, ok := NewInt(1).Compare(NewString("a")); ok {
		t.Error("int vs string must be incomparable")
	}
	if _, ok := Null.Compare(NewInt(1)); ok {
		t.Error("null must be incomparable")
	}
	if c, ok := NewInt(5).Compare(NewFloat(5)); !ok || c != 0 {
		t.Error("5 should equal 5.0 in comparison")
	}
}

func TestValueTruthy(t *testing.T) {
	if !NewBool(true).Truthy() {
		t.Error("true should be truthy")
	}
	for _, v := range []Value{NewBool(false), Null, NewInt(1), NewString("true")} {
		if v.Truthy() {
			t.Errorf("%v should not be truthy", v)
		}
	}
}

func TestSortKeyOrdersNumbersLikeCompare(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		a := NewFloat(rng.NormFloat64() * 1000)
		b := NewFloat(rng.NormFloat64() * 1000)
		c, _ := a.Compare(b)
		ka, kb := a.SortKey(), b.SortKey()
		switch {
		case c < 0 && !(ka < kb):
			t.Fatalf("SortKey order mismatch: %v < %v but keys %q >= %q", a, b, ka, kb)
		case c > 0 && !(ka > kb):
			t.Fatalf("SortKey order mismatch: %v > %v but keys %q <= %q", a, b, ka, kb)
		case c == 0 && ka != kb:
			t.Fatalf("SortKey mismatch for equal values %v", a)
		}
	}
}

func TestHashableDistinguishesKinds(t *testing.T) {
	vals := []Value{
		Null, NewBool(false), NewBool(true), NewInt(0), NewInt(1),
		NewString(""), NewString("0"), NewString("null"),
		NewList(), NewList(NewInt(1)),
	}
	seen := map[string]Value{}
	for _, v := range vals {
		h := v.Hashable()
		if prev, dup := seen[h]; dup && !(prev.IsNull() && v.IsNull()) {
			// int 0 / float 0.0 intentionally collide (numeric equality);
			// no such pair is in the list above.
			t.Errorf("hash collision between %v and %v", prev, v)
		}
		seen[h] = v
	}
	if NewInt(3).Hashable() != NewFloat(3).Hashable() {
		t.Error("3 and 3.0 must group together")
	}
}

func TestEqualSymmetryProperty(t *testing.T) {
	f := func(ai, bi int64, as, bs string, pick uint8) bool {
		mk := func(sel uint8, i int64, s string) Value {
			switch sel % 5 {
			case 0:
				return Null
			case 1:
				return NewInt(i)
			case 2:
				return NewFloat(float64(i) / 2)
			case 3:
				return NewString(s)
			default:
				return NewBool(i%2 == 0)
			}
		}
		a := mk(pick, ai, as)
		b := mk(pick>>4, bi, bs)
		return a.Equal(b) == b.Equal(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropsCloneAndKeys(t *testing.T) {
	p := Props{"b": NewInt(1), "a": NewString("x")}
	c := p.Clone()
	if !reflect.DeepEqual(p.Keys(), []string{"a", "b"}) {
		t.Errorf("Keys = %v", p.Keys())
	}
	c["a"] = NewInt(99)
	if p["a"].Kind() != KindString {
		t.Error("Clone must not share storage")
	}
	var nilProps Props
	if nilProps.Clone() != nil {
		t.Error("nil Clone should be nil")
	}
	if len(nilProps.Keys()) != 0 {
		t.Error("nil Keys should be empty")
	}
}

func TestValueDisplay(t *testing.T) {
	if NewString("hi").Display() != "hi" {
		t.Error("string display should be unquoted")
	}
	if NewInt(3).Display() != "3" {
		t.Error("int display")
	}
}
