package graph

import (
	"strings"
	"testing"
)

func TestEpochCounting(t *testing.T) {
	g := New("epoch")
	if g.Epoch() != 0 {
		t.Fatalf("fresh graph epoch = %d", g.Epoch())
	}
	a := g.AddNode([]string{"N"}, nil)
	b := g.AddNode([]string{"N"}, nil)
	if g.Epoch() != 2 {
		t.Fatalf("after 2 adds epoch = %d", g.Epoch())
	}
	g.MustAddEdge(a.ID, b.ID, []string{"E"}, nil)
	if err := g.SetNodeProp(a.ID, "k", NewInt(1)); err != nil {
		t.Fatal(err)
	}
	if g.Epoch() != 4 {
		t.Fatalf("after edge+prop epoch = %d", g.Epoch())
	}

	// Failed and no-op mutations must not advance the epoch.
	if err := g.SetNodeProp(999, "k", NewInt(1)); err == nil {
		t.Fatal("SetNodeProp on missing node succeeded")
	}
	g.RemoveNode(999)
	g.RemoveEdge(999)
	if _, err := g.AddEdge(999, a.ID, []string{"E"}, nil); err == nil {
		t.Fatal("AddEdge from missing node succeeded")
	}
	if g.Epoch() != 4 {
		t.Fatalf("failed mutations advanced epoch to %d", g.Epoch())
	}
}

func TestSnapshotPinsEpoch(t *testing.T) {
	g := New("snap")
	a := g.AddNode([]string{"P"}, Props{"city": NewString("Lyon")})
	b := g.AddNode([]string{"P"}, nil)
	e := g.MustAddEdge(a.ID, b.ID, []string{"KNOWS"}, Props{"w": NewInt(1)})

	s := g.Snapshot()
	if !s.IsSnapshot() || g.IsSnapshot() {
		t.Fatal("IsSnapshot flags wrong")
	}
	if s.Epoch() != g.Epoch() {
		t.Fatalf("snapshot epoch %d != live %d", s.Epoch(), g.Epoch())
	}
	// Same epoch -> cached view, same pointer.
	if g.Snapshot() != s {
		t.Fatal("snapshot not cached within an epoch")
	}
	// Snapshot of a snapshot is itself.
	if s.Snapshot() != s {
		t.Fatal("snapshot of snapshot != itself")
	}

	// Mutate the live graph in every way that shares storage with the view.
	g.AddNode([]string{"P"}, nil)
	if err := g.SetNodeProp(a.ID, "city", NewString("Paris")); err != nil {
		t.Fatal(err)
	}
	if err := g.SetEdgeProp(e.ID, "w", NewInt(9)); err != nil {
		t.Fatal(err)
	}
	g.RemoveNode(b.ID) // cascades over e, hits adjacency + type index

	// The pinned view still serves the old epoch.
	if s.NodeCount() != 2 || s.EdgeCount() != 1 {
		t.Fatalf("snapshot counts changed: %d nodes %d edges", s.NodeCount(), s.EdgeCount())
	}
	if got := s.Node(a.ID).Prop("city"); !got.Equal(NewString("Lyon")) {
		t.Fatalf("snapshot node prop = %v", got)
	}
	if got := s.Edge(e.ID).Prop("w"); !got.Equal(NewInt(1)) {
		t.Fatalf("snapshot edge prop = %v", got)
	}
	if ids := s.NodesWithLabel("P"); len(ids) != 2 {
		t.Fatalf("snapshot label scan = %v", ids)
	}
	if ids := s.OutEdges(a.ID); len(ids) != 1 || ids[0] != e.ID {
		t.Fatalf("snapshot adjacency = %v", ids)
	}
	if ids := s.EdgesWithType("KNOWS"); len(ids) != 1 {
		t.Fatalf("snapshot type index = %v", ids)
	}
	// Lazy read caches build fine on a frozen view.
	if ns := s.LabelPropNodes("P", "city", NewString("Lyon")); len(ns) != 1 {
		t.Fatalf("snapshot prop index = %v", ns)
	}

	// A new epoch yields a new view reflecting the changes.
	s2 := g.Snapshot()
	if s2 == s {
		t.Fatal("snapshot not invalidated by commit")
	}
	if s2.NodeCount() != 2 || s2.EdgeCount() != 0 {
		t.Fatalf("fresh snapshot counts: %d nodes %d edges", s2.NodeCount(), s2.EdgeCount())
	}
	if got := s2.Node(a.ID).Prop("city"); !got.Equal(NewString("Paris")) {
		t.Fatalf("fresh snapshot prop = %v", got)
	}
}

func TestFrozenMutationPanics(t *testing.T) {
	g := New("frozen")
	g.AddNode([]string{"N"}, nil)
	s := g.Snapshot()
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if r := recover(); r == nil {
				t.Errorf("%s on frozen view did not panic", name)
			} else if !strings.Contains(r.(string), "frozen") {
				t.Errorf("%s panic message %q", name, r)
			}
		}()
		fn()
	}
	mustPanic("AddNode", func() { s.AddNode([]string{"N"}, nil) })
	mustPanic("RemoveNode", func() { s.RemoveNode(0) })
	mustPanic("SetNodeProp", func() { _ = s.SetNodeProp(0, "k", NewInt(1)) })
	mustPanic("NewBatch", func() { s.NewBatch() })
}

func TestBatchAtomicCommit(t *testing.T) {
	g := New("batch")
	pre := g.AddNode([]string{"Old"}, nil)
	epoch := g.Epoch()

	var delta *Delta
	cancel := g.OnCommit(func(d *Delta) { delta = d })
	defer cancel()

	b := g.NewBatch()
	n1 := b.AddNode([]string{"N"}, Props{"k": NewInt(1)})
	n2 := b.AddNode([]string{"N"}, nil)
	e, err := b.AddEdge(n1.ID, n2.ID, []string{"E"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	b.SetNodeProp(pre.ID, "seen", NewBool(true))
	b.SetEdgeProp(e.ID, "w", NewFloat(0.5))
	b.AddNodeLabels(n1.ID, "Extra")

	// Nothing visible before commit; epoch unchanged.
	if g.NodeCount() != 1 || g.EdgeCount() != 0 || g.Epoch() != epoch {
		t.Fatalf("batch leaked before commit: %d nodes, epoch %d", g.NodeCount(), g.Epoch())
	}

	d, err := b.Commit()
	if err != nil {
		t.Fatal(err)
	}
	if g.Epoch() != epoch+1 {
		t.Fatalf("batch committed %d epochs", g.Epoch()-epoch)
	}
	if d != delta {
		t.Fatal("OnCommit delta != Commit return")
	}
	if d.Epoch != g.Epoch() {
		t.Fatalf("delta epoch %d, graph %d", d.Epoch, g.Epoch())
	}
	if g.NodeCount() != 3 || g.EdgeCount() != 1 {
		t.Fatalf("after commit: %d nodes %d edges", g.NodeCount(), g.EdgeCount())
	}
	if got := g.Node(n1.ID); !got.HasLabel("Extra") || !got.Prop("k").Equal(NewInt(1)) {
		t.Fatalf("batch node state: %+v", got)
	}
	if got := g.Edge(e.ID).Prop("w"); !got.Equal(NewFloat(0.5)) {
		t.Fatalf("batch edge prop: %v", got)
	}
	if len(d.Ops) != 6 {
		t.Fatalf("delta ops = %d, want 6", len(d.Ops))
	}

	// Double commit is an error.
	if _, err := b.Commit(); err == nil {
		t.Fatal("double commit succeeded")
	}
}

func TestBatchValidationAllOrNothing(t *testing.T) {
	g := New("atomic")
	epoch := g.Epoch()
	fired := false
	cancel := g.OnCommit(func(*Delta) { fired = true })
	defer cancel()

	b := g.NewBatch()
	b.AddNode([]string{"N"}, nil)
	if _, err := b.AddEdge(12345, 67890, []string{"E"}, nil); err != nil {
		t.Fatal(err) // buffering succeeds; validation is at commit
	}
	if _, err := b.Commit(); err == nil {
		t.Fatal("commit with dangling edge succeeded")
	}
	if g.NodeCount() != 0 || g.Epoch() != epoch || fired {
		t.Fatalf("failed commit leaked state: %d nodes, epoch %d, fired=%v",
			g.NodeCount(), g.Epoch(), fired)
	}

	// Ops referencing missing elements fail validation too.
	b2 := g.NewBatch()
	b2.SetNodeProp(999, "k", NewInt(1))
	if _, err := b2.Commit(); err == nil {
		t.Fatal("SetNodeProp on missing node passed validation")
	}

	// An edge whose endpoint is removed earlier in the same batch fails.
	n := g.AddNode([]string{"N"}, nil)
	b3 := g.NewBatch()
	b3.RemoveNode(n.ID)
	if _, err := b3.AddEdge(n.ID, n.ID, []string{"E"}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := b3.Commit(); err == nil {
		t.Fatal("edge to batch-removed node passed validation")
	}
}

func TestBatchRemoveCascadesOverBatchAdds(t *testing.T) {
	g := New("cascade")
	b := g.NewBatch()
	n1 := b.AddNode([]string{"N"}, nil)
	n2 := b.AddNode([]string{"N"}, nil)
	if _, err := b.AddEdge(n1.ID, n2.ID, []string{"E"}, nil); err != nil {
		t.Fatal(err)
	}
	// Removing n1 later in the same batch must cascade over the edge added
	// above, and a subsequent SetEdgeProp on that edge must fail validation.
	b.RemoveNode(n1.ID)
	if d, err := b.Commit(); err != nil {
		t.Fatal(err)
	} else if d.Empty() {
		t.Fatal("cascade delta empty")
	}
	if g.NodeCount() != 1 || g.EdgeCount() != 0 {
		t.Fatalf("after cascade: %d nodes %d edges", g.NodeCount(), g.EdgeCount())
	}
}

func TestDeltaChangeSummaries(t *testing.T) {
	g := New("delta")
	var last *Delta
	cancel := g.OnCommit(func(d *Delta) { last = d })
	defer cancel()

	n := g.AddNode([]string{"A", "B"}, Props{"x": NewInt(1)})
	if ed := last.NodeChanges["A"]; ed == nil || !ed.Structural || !ed.Keys["x"] {
		t.Fatalf("AddNode delta under A: %+v", ed)
	}
	if ed := last.NodeChanges["B"]; ed == nil || !ed.Structural {
		t.Fatalf("AddNode delta under B: %+v", ed)
	}
	if len(last.Nodes) != 1 || last.Nodes[0] != n.ID {
		t.Fatalf("touched nodes: %v", last.Nodes)
	}

	// Property-only change: key-scoped, not structural.
	if err := g.SetNodeProp(n.ID, "y", NewInt(2)); err != nil {
		t.Fatal(err)
	}
	if ed := last.NodeChanges["A"]; ed == nil || ed.Structural || !ed.Keys["y"] || ed.Keys["x"] {
		t.Fatalf("SetNodeProp delta: %+v", ed)
	}

	// Unlabeled nodes record under the empty label.
	g.AddNode(nil, nil)
	if ed := last.NodeChanges[""]; ed == nil || !ed.Structural {
		t.Fatalf("unlabeled delta: %+v", last.NodeChanges)
	}

	// AddNodeLabels is structural under old AND new labels.
	if err := g.AddNodeLabels(n.ID, "C"); err != nil {
		t.Fatal(err)
	}
	for _, l := range []string{"A", "B", "C"} {
		if ed := last.NodeChanges[l]; ed == nil || !ed.Structural {
			t.Fatalf("AddNodeLabels delta under %s: %+v", l, ed)
		}
	}

	// RemoveNode marks incident edge types structural too.
	m := g.AddNode([]string{"M"}, nil)
	g.MustAddEdge(n.ID, m.ID, []string{"REL"}, nil)
	g.RemoveNode(n.ID)
	if ed := last.EdgeChanges["REL"]; ed == nil || !ed.Structural {
		t.Fatalf("cascade edge delta: %+v", last.EdgeChanges)
	}
	if ed := last.NodeChanges["A"]; ed == nil || !ed.Structural {
		t.Fatalf("remove node delta: %+v", last.NodeChanges)
	}
	// The removal op carries the removed structs for redo/undo logging.
	var sawNode, sawEdge bool
	for _, op := range last.Ops {
		switch op.Kind {
		case OpRemoveNode:
			sawNode = op.Node != nil
		case OpRemoveEdge:
			sawEdge = op.Edge != nil
		}
	}
	if !sawNode || !sawEdge {
		t.Fatalf("removal ops missing structs: node=%v edge=%v", sawNode, sawEdge)
	}
}

func TestOnCommitOrderingAndCancel(t *testing.T) {
	g := New("subs")
	var order []string
	c1 := g.OnCommit(func(*Delta) { order = append(order, "first") })
	c2 := g.OnCommit(func(*Delta) { order = append(order, "second") })
	g.AddNode([]string{"N"}, nil)
	if len(order) != 2 || order[0] != "first" || order[1] != "second" {
		t.Fatalf("delivery order: %v", order)
	}

	c1()
	order = nil
	g.AddNode([]string{"N"}, nil)
	if len(order) != 1 || order[0] != "second" {
		t.Fatalf("after cancel: %v", order)
	}
	c2()
	order = nil
	g.AddNode([]string{"N"}, nil)
	if len(order) != 0 {
		t.Fatalf("after full cancel: %v", order)
	}

	// With no subscribers, mutators skip delta recording entirely — pinned
	// indirectly: epochs still advance.
	if g.Epoch() != 3 {
		t.Fatalf("epoch = %d", g.Epoch())
	}
}

// TestOnCommitSeesCommittedEpoch pins the contract that a callback reading
// the graph observes exactly the epoch it was notified about: delivery
// happens before the next writer can commit.
func TestOnCommitSeesCommittedEpoch(t *testing.T) {
	g := New("read-in-cb")
	var snapCounts []int
	cancel := g.OnCommit(func(d *Delta) {
		s := g.Snapshot()
		if s.Epoch() != d.Epoch {
			t.Errorf("callback snapshot epoch %d, delta %d", s.Epoch(), d.Epoch)
		}
		snapCounts = append(snapCounts, s.NodeCount())
	})
	defer cancel()
	for i := 0; i < 5; i++ {
		g.AddNode([]string{"N"}, nil)
	}
	for i, c := range snapCounts {
		if c != i+1 {
			t.Fatalf("callback %d saw %d nodes", i, c)
		}
	}
}

func TestBatchEmptyAndErrSticky(t *testing.T) {
	g := New("empty")
	d, err := g.NewBatch().Commit()
	if err != nil || !d.Empty() {
		t.Fatalf("empty batch: %v %v", d, err)
	}

	b := g.NewBatch()
	if _, err := b.AddEdge(0, 0, nil, nil); err == nil {
		t.Fatal("AddEdge without labels succeeded")
	}
	b.AddNode([]string{"N"}, nil)
	if _, err := b.Commit(); err == nil {
		t.Fatal("commit after buffered error succeeded")
	}
	if g.NodeCount() != 0 {
		t.Fatal("errored batch applied ops")
	}
}
