package vectorstore

import (
	"fmt"
	"sort"
	"sync"
	"testing"

	"github.com/graphrules/graphrules/internal/embedding"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0); err == nil {
		t.Error("dim 0 should fail")
	}
	s, err := New(8)
	if err != nil || s.Dim() != 8 {
		t.Fatal("New(8) failed")
	}
}

func TestAddGetSearch(t *testing.T) {
	e := embedding.MustNewHashing(64)
	s, _ := New(64)
	texts := []string{
		"tweets have unique identifiers",
		"users follow other users",
		"hashtags tag tweets",
		"cooking pasta with tomato sauce",
	}
	for _, txt := range texts {
		if _, err := s.Add(txt, e.Embed(txt), map[string]string{"src": "test"}); err != nil {
			t.Fatal(err)
		}
	}
	if s.Len() != 4 {
		t.Fatalf("Len = %d", s.Len())
	}
	if d := s.Get(2); d == nil || d.Text != texts[2] || d.Meta["src"] != "test" {
		t.Errorf("Get(2) = %+v", d)
	}
	if s.Get(-1) != nil || s.Get(99) != nil {
		t.Error("out-of-range Get should be nil")
	}

	hits, err := s.Search(e.Embed("unique identifier of a tweet"), 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 2 {
		t.Fatalf("hits = %d", len(hits))
	}
	if hits[0].Doc.Text != texts[0] {
		t.Errorf("top hit = %q", hits[0].Doc.Text)
	}
	if hits[0].Score < hits[1].Score {
		t.Error("hits not sorted by score")
	}
}

func TestSearchValidation(t *testing.T) {
	s, _ := New(4)
	if _, err := s.Add("x", []float32{1, 2}, nil); err == nil {
		t.Error("wrong-dim Add should fail")
	}
	if _, err := s.Search([]float32{1}, 1, nil); err == nil {
		t.Error("wrong-dim Search should fail")
	}
	if _, err := s.Search([]float32{1, 0, 0, 0}, 0, nil); err == nil {
		t.Error("k=0 should fail")
	}
	hits, err := s.Search([]float32{1, 0, 0, 0}, 3, nil)
	if err != nil || len(hits) != 0 {
		t.Error("search on empty store should return no hits")
	}
}

func TestSearchFilter(t *testing.T) {
	e := embedding.MustNewHashing(32)
	s, _ := New(32)
	for i := 0; i < 10; i++ {
		kind := "even"
		if i%2 == 1 {
			kind = "odd"
		}
		s.Add(fmt.Sprintf("chunk %d", i), e.Embed(fmt.Sprintf("chunk %d", i)), map[string]string{"kind": kind})
	}
	hits, err := s.Search(e.Embed("chunk"), 10, func(d *Doc) bool { return d.Meta["kind"] == "odd" })
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 5 {
		t.Fatalf("filtered hits = %d", len(hits))
	}
	for _, h := range hits {
		if h.Doc.Meta["kind"] != "odd" {
			t.Error("filter leaked")
		}
	}
}

func TestTieBreakDeterminism(t *testing.T) {
	s, _ := New(2)
	v := []float32{1, 0}
	for i := 0; i < 5; i++ {
		s.Add(fmt.Sprintf("d%d", i), v, nil)
	}
	hits, _ := s.Search(v, 3, nil)
	for i, h := range hits {
		if h.Doc.ID != i {
			t.Errorf("tie order hit %d = doc %d", i, h.Doc.ID)
		}
	}
}

// TestTopKMatchesFullSort cross-checks the bounded top-k selection against
// a reference full sort across mixed scores, duplicate scores, and every k
// from 1 to beyond the store size.
func TestTopKMatchesFullSort(t *testing.T) {
	s, _ := New(2)
	// Deterministic spread of angles, with deliberate duplicates.
	vecs := [][]float32{
		{1, 0}, {0.9, 0.1}, {0.5, 0.5}, {0.9, 0.1}, {0, 1},
		{0.7, 0.3}, {1, 0}, {0.2, 0.8}, {0.5, 0.5}, {0.99, 0.01},
	}
	for i, v := range vecs {
		if _, err := s.Add(fmt.Sprintf("d%d", i), v, nil); err != nil {
			t.Fatal(err)
		}
	}
	query := []float32{1, 0}

	// Reference ranking: every doc, sorted (score desc, ID asc).
	type ranked struct {
		id    int
		score float64
	}
	var all []ranked
	for i, v := range vecs {
		all = append(all, ranked{i, embedding.Cosine(query, v)})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].score != all[j].score {
			return all[i].score > all[j].score
		}
		return all[i].id < all[j].id
	})

	for k := 1; k <= len(vecs)+2; k++ {
		hits, err := s.Search(query, k, nil)
		if err != nil {
			t.Fatal(err)
		}
		want := k
		if want > len(vecs) {
			want = len(vecs)
		}
		if len(hits) != want {
			t.Fatalf("k=%d: got %d hits, want %d", k, len(hits), want)
		}
		for i, h := range hits {
			if h.Doc.ID != all[i].id || h.Score != all[i].score {
				t.Errorf("k=%d hit %d: doc %d score %v, want doc %d score %v",
					k, i, h.Doc.ID, h.Score, all[i].id, all[i].score)
			}
		}
	}
}

func TestVectorCopied(t *testing.T) {
	s, _ := New(2)
	v := []float32{1, 0}
	s.Add("a", v, nil)
	v[0] = -1
	hits, _ := s.Search([]float32{1, 0}, 1, nil)
	if hits[0].Score < 0.99 {
		t.Error("store must copy vectors on Add")
	}
}

func TestConcurrentAccess(t *testing.T) {
	e := embedding.MustNewHashing(16)
	s, _ := New(16)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				txt := fmt.Sprintf("w%d i%d", w, i)
				s.Add(txt, e.Embed(txt), nil)
				s.Search(e.Embed("i"), 3, nil)
			}
		}(w)
	}
	wg.Wait()
	if s.Len() != 200 {
		t.Errorf("Len = %d, want 200", s.Len())
	}
}
