// Package vectorstore implements the in-memory vector database of the RAG
// path (Figure 2b): embedded text chunks are stored and retrieved by cosine
// similarity to a query embedding.
package vectorstore

import (
	"container/heap"
	"fmt"
	"sort"
	"sync"

	"github.com/graphrules/graphrules/internal/embedding"
)

// Doc is one stored chunk.
type Doc struct {
	ID     int
	Text   string
	Vector []float32
	Meta   map[string]string
}

// Hit is one retrieval result.
type Hit struct {
	Doc   *Doc
	Score float64
}

// Store is an in-memory vector database. It is safe for concurrent use.
type Store struct {
	mu   sync.RWMutex
	dim  int
	docs []*Doc
}

// New returns an empty store for vectors of the given dimensionality.
func New(dim int) (*Store, error) {
	if dim <= 0 {
		return nil, fmt.Errorf("vectorstore: dimension must be positive, got %d", dim)
	}
	return &Store{dim: dim}, nil
}

// Dim returns the store's vector dimensionality.
func (s *Store) Dim() int { return s.dim }

// Len returns the number of stored documents.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.docs)
}

// Add stores a chunk and returns its assigned ID.
func (s *Store) Add(text string, vector []float32, meta map[string]string) (int, error) {
	if len(vector) != s.dim {
		return 0, fmt.Errorf("vectorstore: vector has dim %d, store expects %d", len(vector), s.dim)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	id := len(s.docs)
	cp := make([]float32, len(vector))
	copy(cp, vector)
	var m map[string]string
	if meta != nil {
		m = make(map[string]string, len(meta))
		for k, v := range meta {
			m[k] = v
		}
	}
	s.docs = append(s.docs, &Doc{ID: id, Text: text, Vector: cp, Meta: m})
	return id, nil
}

// Get returns the document with the given ID, or nil.
func (s *Store) Get(id int) *Doc {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if id < 0 || id >= len(s.docs) {
		return nil
	}
	return s.docs[id]
}

// Search returns the k documents most similar to the query vector, ordered
// by descending cosine score (ties broken by ascending ID for determinism).
// filter, when non-nil, must approve a doc for it to be considered.
func (s *Store) Search(query []float32, k int, filter func(*Doc) bool) ([]Hit, error) {
	if len(query) != s.dim {
		return nil, fmt.Errorf("vectorstore: query has dim %d, store expects %d", len(query), s.dim)
	}
	if k <= 0 {
		return nil, fmt.Errorf("vectorstore: k must be positive, got %d", k)
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	// Bounded top-k selection: keep the k best seen so far in a min-heap
	// whose root is the current worst, so a full sort of every stored doc
	// is never materialized. (score desc, ID asc) is a strict total order,
	// so the selected set and its final ordering are deterministic.
	h := make(topK, 0, k)
	for _, d := range s.docs {
		if filter != nil && !filter(d) {
			continue
		}
		hit := Hit{Doc: d, Score: embedding.Cosine(query, d.Vector)}
		switch {
		case len(h) < k:
			heap.Push(&h, hit)
		case betterHit(hit, h[0]):
			h[0] = hit
			heap.Fix(&h, 0)
		}
	}
	hits := []Hit(h)
	sort.Slice(hits, func(i, j int) bool { return betterHit(hits[i], hits[j]) })
	return hits, nil
}

// betterHit ranks hits by descending score, ties broken by ascending ID.
func betterHit(a, b Hit) bool {
	if a.Score != b.Score {
		return a.Score > b.Score
	}
	return a.Doc.ID < b.Doc.ID
}

// topK is a min-heap over hits ordered by betterHit, worst at the root.
type topK []Hit

func (h topK) Len() int           { return len(h) }
func (h topK) Less(i, j int) bool { return betterHit(h[j], h[i]) }
func (h topK) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *topK) Push(x any)        { *h = append(*h, x.(Hit)) }
func (h *topK) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
