// Benchmark harness regenerating every table and figure of the paper's
// evaluation (see DESIGN.md's experiment index):
//
//	BenchmarkTable1DatasetLoad       Table 1  dataset sizes
//	BenchmarkTable2WWC2019Mining     Table 2  WWC2019 metrics grid
//	BenchmarkTable3CybersecurityMining  Table 3
//	BenchmarkTable4TwitterMining     Table 4
//	BenchmarkTable5MiningTime        Table 5  simulated mining seconds
//	BenchmarkTable6CypherCorrectness Table 6  correct/generated queries
//	BenchmarkBoundaryAudit           §4.5 broken-pattern counts
//	BenchmarkAblation*               DESIGN.md ablations A1-A4
//	BenchmarkEngine*                 substrate micro-benchmarks
//
// Each table bench reports the paper's row values as custom benchmark
// metrics; `go run ./cmd/benchtables` prints the same numbers as formatted
// tables.
package graphrules

import (
	"bytes"
	"fmt"
	"runtime"
	"sync"
	"testing"

	"github.com/graphrules/graphrules/internal/baseline"
	"github.com/graphrules/graphrules/internal/cypher"
	"github.com/graphrules/graphrules/internal/datasets"
	"github.com/graphrules/graphrules/internal/embedding"
	"github.com/graphrules/graphrules/internal/llm"
	"github.com/graphrules/graphrules/internal/metrics"
	"github.com/graphrules/graphrules/internal/mining"
	"github.com/graphrules/graphrules/internal/prompt"
	"github.com/graphrules/graphrules/internal/report"
	"github.com/graphrules/graphrules/internal/rules"
	"github.com/graphrules/graphrules/internal/storage"
	"github.com/graphrules/graphrules/internal/textenc"
)

const benchSeed = 42

// graphCache memoizes generated datasets across benchmarks.
var graphCache sync.Map

func benchGraph(name string) *Graph {
	if g, ok := graphCache.Load(name); ok {
		return g.(*Graph)
	}
	g := Dataset(name, DefaultDatasetOptions())
	graphCache.Store(name, g)
	return g
}

// gridCache memoizes the full experimental grid per dataset (used by the
// Table 5/6 reporting benches so the mining work isn't repeated).
var gridCache sync.Map

func benchGrid(b *testing.B, name string) []report.Cell {
	if cells, ok := gridCache.Load(name); ok {
		return cells.([]report.Cell)
	}
	cells, err := report.RunDataset(benchGraph(name), benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	gridCache.Store(name, cells)
	return cells
}

// BenchmarkTable1DatasetLoad regenerates Table 1: the cost of materializing
// each dataset at its exact paper size.
func BenchmarkTable1DatasetLoad(b *testing.B) {
	for _, info := range datasets.Table1 {
		b.Run(info.Name, func(b *testing.B) {
			var g *Graph
			for i := 0; i < b.N; i++ {
				g = Dataset(info.Name, DefaultDatasetOptions())
			}
			if g.NodeCount() != info.Nodes || g.EdgeCount() != info.Edges {
				b.Fatalf("size drift: %d/%d", g.NodeCount(), g.EdgeCount())
			}
			b.ReportMetric(float64(g.NodeCount()), "nodes")
			b.ReportMetric(float64(g.EdgeCount()), "edges")
			b.ReportMetric(float64(len(g.NodeLabels())), "node_labels")
			b.ReportMetric(float64(len(g.EdgeTypes())), "edge_labels")
		})
	}
}

// benchMetricsTable runs the 8-configuration grid of one metrics table
// (Tables 2-4), reporting the paper's row values per configuration.
func benchMetricsTable(b *testing.B, dataset string) {
	g := benchGraph(dataset)
	for _, profile := range llm.Profiles() {
		for _, method := range mining.Methods {
			for _, mode := range prompt.Modes {
				name := fmt.Sprintf("%s/%s/%s", profile.Name, shortMethod(method), mode)
				b.Run(name, func(b *testing.B) {
					var res *MiningResult
					var err error
					for i := 0; i < b.N; i++ {
						res, err = Mine(g, MiningConfig{
							Model:  NewSimModel(profile, benchSeed),
							Method: method,
							Mode:   mode,
						})
						if err != nil {
							b.Fatal(err)
						}
					}
					agg := res.Aggregate
					b.ReportMetric(float64(agg.Rules), "rules")
					b.ReportMetric(agg.MeanSupport, "supp")
					b.ReportMetric(agg.MeanCoverage, "cov%")
					b.ReportMetric(agg.MeanConfidence, "conf%")
				})
			}
		}
	}
}

func shortMethod(m mining.Method) string {
	if m == mining.RAG {
		return "RAG"
	}
	return "SWA"
}

// BenchmarkTable2WWC2019Mining regenerates Table 2.
func BenchmarkTable2WWC2019Mining(b *testing.B) { benchMetricsTable(b, "WWC2019") }

// BenchmarkTable3CybersecurityMining regenerates Table 3.
func BenchmarkTable3CybersecurityMining(b *testing.B) { benchMetricsTable(b, "Cybersecurity") }

// BenchmarkTable4TwitterMining regenerates Table 4.
func BenchmarkTable4TwitterMining(b *testing.B) { benchMetricsTable(b, "Twitter") }

// BenchmarkTable5MiningTime regenerates Table 5: the simulated LLM mining
// seconds per configuration (from the cached grid; the real wall-clock of
// the pipeline is what Tables 2-4 benches measure).
func BenchmarkTable5MiningTime(b *testing.B) {
	for _, dataset := range datasets.Names() {
		cells := benchGrid(b, dataset)
		for _, c := range cells {
			c := c
			name := fmt.Sprintf("%s/%s/%s/%s", dataset, c.Model, shortMethod(c.Method), c.Mode)
			b.Run(name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					_ = c.Result.MiningSeconds
				}
				b.ReportMetric(c.Result.MiningSeconds, "sim_s")
				b.ReportMetric(float64(c.Result.Windows), "llm_calls")
			})
		}
	}
}

// BenchmarkTable6CypherCorrectness regenerates Table 6: correct / generated
// Cypher query counts per configuration.
func BenchmarkTable6CypherCorrectness(b *testing.B) {
	for _, dataset := range datasets.Names() {
		cells := benchGrid(b, dataset)
		for _, c := range cells {
			c := c
			name := fmt.Sprintf("%s/%s/%s/%s", dataset, c.Model, shortMethod(c.Method), c.Mode)
			b.Run(name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					_ = c.Result.CypherCorrect
				}
				b.ReportMetric(float64(c.Result.CypherCorrect), "correct")
				b.ReportMetric(float64(c.Result.CypherTotal), "generated")
			})
		}
	}
}

// BenchmarkBoundaryAudit reproduces the §4.5 broken-pattern counts (paper:
// 6 / 11 / 6) by windowing each dataset's incident encoding.
func BenchmarkBoundaryAudit(b *testing.B) {
	for _, dataset := range datasets.Names() {
		b.Run(dataset, func(b *testing.B) {
			g := benchGraph(dataset)
			var broken []textenc.Block
			for i := 0; i < b.N; i++ {
				enc := textenc.IncidentEncoder{}.Encode(g)
				var err error
				broken, err = textenc.BrokenBlocks(enc, textenc.DefaultWindowTokens, textenc.DefaultOverlapTokens)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(len(broken)), "broken_patterns")
		})
	}
}

// BenchmarkAblationEncoders (A1): the incident encoder against adjacency
// and triplet alternatives on WWC2019.
func BenchmarkAblationEncoders(b *testing.B) {
	g := benchGraph("WWC2019")
	for _, name := range textenc.EncoderNames() {
		enc := textenc.Encoders()[name]
		b.Run(name, func(b *testing.B) {
			var res *MiningResult
			var err error
			for i := 0; i < b.N; i++ {
				res, err = Mine(g, MiningConfig{Model: NewSimModel(LLaMA3(), benchSeed), Encoder: enc})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(res.Aggregate.Rules), "rules")
			b.ReportMetric(res.Aggregate.MeanConfidence, "conf%")
			b.ReportMetric(float64(res.Windows), "llm_calls")
		})
	}
}

// BenchmarkAblationWindows (A2): window size / overlap sweep on WWC2019.
func BenchmarkAblationWindows(b *testing.B) {
	g := benchGraph("WWC2019")
	for _, size := range []int{2000, 4000, 8000, 16000} {
		for _, overlap := range []int{-1, 500} { // -1 disables overlap
			label := overlap
			if label < 0 {
				label = 0
			}
			b.Run(fmt.Sprintf("w%d_o%d", size, label), func(b *testing.B) {
				var res *MiningResult
				var err error
				for i := 0; i < b.N; i++ {
					res, err = Mine(g, MiningConfig{
						Model:         NewSimModel(LLaMA3(), benchSeed),
						WindowTokens:  size,
						OverlapTokens: overlap,
					})
					if err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(res.Windows), "llm_calls")
				b.ReportMetric(float64(res.BrokenPatterns), "broken")
				b.ReportMetric(res.Aggregate.MeanConfidence, "conf%")
				b.ReportMetric(res.MiningSeconds, "sim_s")
			})
		}
	}
}

// BenchmarkAblationRAGTopK (A3): retrieval depth sweep on Cybersecurity.
func BenchmarkAblationRAGTopK(b *testing.B) {
	g := benchGraph("Cybersecurity")
	for _, k := range []int{2, 4, 8, 16} {
		b.Run(fmt.Sprintf("k%d", k), func(b *testing.B) {
			var res *MiningResult
			var err error
			for i := 0; i < b.N; i++ {
				res, err = Mine(g, MiningConfig{
					Model:   NewSimModel(LLaMA3(), benchSeed),
					Method:  RAG,
					RAGTopK: k,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(res.Aggregate.Rules), "rules")
			b.ReportMetric(res.Aggregate.MeanCoverage, "cov%")
			b.ReportMetric(res.MiningSeconds, "sim_s")
		})
	}
}

// BenchmarkBaselineMiner (A4): the AMIE-style comparator.
func BenchmarkBaselineMiner(b *testing.B) {
	for _, dataset := range []string{"WWC2019", "Cybersecurity"} {
		for _, complex := range []bool{false, true} {
			b.Run(fmt.Sprintf("%s/complex=%v", dataset, complex), func(b *testing.B) {
				g := benchGraph(dataset)
				var res *baseline.Result
				var err error
				for i := 0; i < b.N; i++ {
					res, err = baseline.Mine(g, baseline.Config{MinConfidence: 90, IncludeComplex: complex})
					if err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(res.CandidatesTried), "candidates")
				b.ReportMetric(float64(len(res.Scores)), "rules")
			})
		}
	}
}

// ---------- substrate micro-benchmarks ----------

// BenchmarkEngineUniquenessQuery measures the canonical grouped uniqueness
// check on the 43k-node Twitter graph.
func BenchmarkEngineUniquenessQuery(b *testing.B) {
	g := benchGraph("Twitter")
	ex := NewExecutor(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := ex.Run(`MATCH (t:Tweet) WITH t.id AS id, count(*) AS c WHERE c > 1 RETURN count(*) AS n`, nil)
		if err != nil {
			b.Fatal(err)
		}
		if res.FirstInt("n") == 0 {
			b.Fatal("expected duplicate tweet ids")
		}
	}
}

// BenchmarkEngineTwoHopMatch measures multi-hop pattern matching with a
// negated pattern predicate on WWC2019.
func BenchmarkEngineTwoHopMatch(b *testing.B) {
	g := benchGraph("WWC2019")
	ex := NewExecutor(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := ex.Run(`MATCH (p:Person)-[:PLAYED_IN]->(m:Match)-[:IN_TOURNAMENT]->(t:Tournament)
			WHERE NOT (p)-[:IN_SQUAD]->(:Squad)-[:FOR]->(t) RETURN count(*) AS n`, nil)
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineIncidentEncode measures graph-to-text encoding throughput.
func BenchmarkEngineIncidentEncode(b *testing.B) {
	g := benchGraph("Cybersecurity")
	b.ResetTimer()
	var tokens int
	for i := 0; i < b.N; i++ {
		tokens = textenc.IncidentEncoder{}.Encode(g).TokenCount()
	}
	b.ReportMetric(float64(tokens), "tokens")
}

// BenchmarkEngineEmbedding measures the hashing embedder.
func BenchmarkEngineEmbedding(b *testing.B) {
	e := embedding.MustNewHashing(embedding.DefaultDim)
	text := "Node 42 with labels Person has properties (id: 10042, name: \"Alex Smith\"). " +
		"Node 42 has edge SCORED_GOAL to node 77 (Match) with properties (minute: 5)."
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Embed(text)
	}
}

// BenchmarkEngineSnapshot measures snapshot serialization round trips.
func BenchmarkEngineSnapshot(b *testing.B) {
	g := benchGraph("Cybersecurity")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := storage.WriteSnapshot(&buf, g); err != nil {
			b.Fatal(err)
		}
		if _, err := storage.ReadSnapshot(&buf); err != nil {
			b.Fatal(err)
		}
	}
}

// wwcRules is the WWC2019 scoring workload used by BenchmarkScoreRules:
// the same six rule shapes the cross-check suite exercises.
func wwcRules() []rules.Rule {
	return []rules.Rule{
		&rules.RequiredProperty{Label: "Match", Key: "date"},
		&rules.UniqueProperty{Label: "Person", Key: "id"},
		&rules.EdgeEndpoints{EdgeType: "IN_TOURNAMENT", FromLabel: "Match", ToLabel: "Tournament"},
		&rules.UniqueEdgeProp{EdgeType: "SCORED_GOAL", FromLabel: "Person", ToLabel: "Match", Key: "minute"},
		&rules.MandatoryEdge{Label: "Squad", EdgeType: "FOR", OtherLabel: "Tournament"},
		&rules.PathAssociation{ALabel: "Person", E1: "PLAYED_IN", BLabel: "Match", E2: "IN_TOURNAMENT", CLabel: "Tournament",
			ReqE1: "IN_SQUAD", ReqLabel: "Squad", ReqE2: "FOR"},
	}
}

// BenchmarkScoreRules measures the rule-scoring hot path on WWC2019 across
// engine configurations. seed_serial approximates the pre-optimization
// path: a fresh executor per rule (cold plan cache) with index pushdown
// and the count fast path disabled. warm_serial shares one scorer (warm
// plan cache, all fast paths); parallel adds the GOMAXPROCS worker pool.
// The cypher-vs-native cross-check runs first, outside the timed loops.
func BenchmarkScoreRules(b *testing.B) {
	g := benchGraph("WWC2019")
	rs := wwcRules()
	for _, r := range rs {
		if err := metrics.CrossCheck(g, r); err != nil {
			b.Fatal(err)
		}
	}

	runQueries := func(b *testing.B, ex *cypher.Executor, qs rules.QuerySet) {
		for _, src := range []string{qs.Support, qs.Body, qs.HeadTotal} {
			res, err := ex.Run(src, nil)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := res.IntErr(0, "n"); err != nil {
				b.Fatal(err)
			}
		}
	}

	b.Run("seed_serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, r := range rs {
				ex := cypher.NewExecutor(g)
				ex.SetIndexPushdown(false)
				ex.SetCountFastPath(false)
				runQueries(b, ex, r.Queries())
			}
		}
	})
	b.Run("cold_serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, failed := metrics.EvaluateRules(g, rs); len(failed) > 0 {
				b.Fatal(failed[0])
			}
		}
	})
	b.Run("warm_serial", func(b *testing.B) {
		sc := metrics.NewScorer(g)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, r := range rs {
				if _, err := sc.EvaluateRule(r); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.StopTimer()
		st := sc.Executor().PlanCacheStats()
		b.ReportMetric(float64(st.Hits), "plan_hits")
	})
	b.Run("parallel", func(b *testing.B) {
		workers := runtime.GOMAXPROCS(0)
		for i := 0; i < b.N; i++ {
			if _, failed := metrics.EvaluateRulesParallel(g, rs, workers); len(failed) > 0 {
				b.Fatal(failed[0])
			}
		}
	})
}

// BenchmarkEnginePropertyLookup isolates the label+property index pushdown:
// the same constant-property count with the index on and off.
func BenchmarkEnginePropertyLookup(b *testing.B) {
	g := benchGraph("WWC2019")
	const q = `MATCH (m:Match {stage: 'Group Stage'}) RETURN count(*) AS n`
	for _, pushdown := range []bool{false, true} {
		b.Run(fmt.Sprintf("pushdown=%v", pushdown), func(b *testing.B) {
			ex := NewExecutor(g)
			ex.SetIndexPushdown(pushdown)
			var want int64 = -1
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := ex.Run(q, nil)
				if err != nil {
					b.Fatal(err)
				}
				n, err := res.IntErr(0, "n")
				if err != nil {
					b.Fatal(err)
				}
				if want == -1 {
					if n == 0 {
						b.Fatal("query matched nothing; benchmark would measure an empty seek")
					}
					want = n
				} else if n != want {
					b.Fatalf("count drifted: %d != %d", n, want)
				}
			}
		})
	}
}

// BenchmarkEngineNativeVsCypher compares the two metric evaluation paths on
// the same rule (the dual-path invariant's cost profile).
func BenchmarkEngineNativeVsCypher(b *testing.B) {
	g := benchGraph("Cybersecurity")
	r := &rules.ValueDomain{Label: "User", Key: "owned",
		Allowed: []Value{NewBoolValue(true), NewBoolValue(false)}}
	b.Run("cypher", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := metrics.EvaluateQueries(g, r.Queries()); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("native", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := r.CountsNative(g); err != nil {
				b.Fatal(err)
			}
		}
	})
}
