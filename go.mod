module github.com/graphrules/graphrules

go 1.22
